//! Randomized consistency test for the incremental LRU aggregates.
//!
//! `LruLists` answers `total_cached`, `total_dirty`, `inactive_bytes`,
//! `active_bytes`, `cached_amount`, `dirty_amount`, `cached_per_file` and
//! `evictable` from incrementally maintained counters. This test applies ~10k
//! random add/read/flush/evict (plus expiry, balance and invalidation)
//! operations and, after **every** operation, recomputes each aggregate from
//! a full scan of the block lists and asserts the incremental answer agrees
//! within `EPSILON`. The scan here is written against the public block
//! iterators, independently of the `recompute_*` oracles inside the crate.

use std::collections::BTreeMap;

use des::SimTime;
use pagecache::{FileId, LruLists, EPSILON};

/// Deterministic xorshift64* PRNG (crates.io is unreachable in this build
/// environment, so no `rand`).
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn f64(&mut self, lo: f64, hi: f64) -> f64 {
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + u * (hi - lo)
    }

    fn usize(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() as usize) % (hi - lo)
    }
}

fn scan_cached(lru: &LruLists) -> f64 {
    lru.iter_all().map(|b| b.size).sum()
}

fn scan_dirty(lru: &LruLists) -> f64 {
    lru.iter_all().filter(|b| b.dirty).map(|b| b.size).sum()
}

fn scan_inactive(lru: &LruLists) -> f64 {
    lru.inactive_blocks().map(|b| b.size).sum()
}

fn scan_active(lru: &LruLists) -> f64 {
    lru.active_blocks().map(|b| b.size).sum()
}

fn scan_cached_amount(lru: &LruLists, file: &FileId) -> f64 {
    lru.iter_all()
        .filter(|b| &b.file == file)
        .map(|b| b.size)
        .sum()
}

fn scan_dirty_amount(lru: &LruLists, file: &FileId) -> f64 {
    lru.iter_all()
        .filter(|b| b.dirty && &b.file == file)
        .map(|b| b.size)
        .sum()
}

fn scan_evictable(lru: &LruLists, exclude: Option<&FileId>) -> f64 {
    lru.inactive_blocks()
        .filter(|b| !b.dirty && (exclude != Some(&b.file)))
        .map(|b| b.size)
        .sum()
}

fn scan_per_file(lru: &LruLists) -> BTreeMap<FileId, f64> {
    let mut map = BTreeMap::new();
    for b in lru.iter_all() {
        *map.entry(b.file.clone()).or_insert(0.0) += b.size;
    }
    map
}

fn assert_close(what: &str, incremental: f64, scanned: f64, op: usize) {
    assert!(
        (incremental - scanned).abs() < EPSILON + 1e-9 * scanned.abs(),
        "op {op}: {what}: incremental {incremental} != scan {scanned}"
    );
}

#[test]
fn incremental_aggregates_match_full_scan_over_10k_random_ops() {
    const OPS: usize = 10_000;
    const FILES: usize = 8;
    let files: Vec<FileId> = (0..FILES)
        .map(|i| FileId::new(format!("file_{i}")))
        .collect();
    let mut rng = Rng(0xDEC0DE);
    let mut lru = LruLists::new();
    let mut clock = 0.0;
    for op in 0..OPS {
        // 1-in-8 ops keep the previous timestamp: simulated events often
        // coincide (chunks of one request), and equal timestamps are what
        // arms the arena's coalescing paths — they must be covered here.
        if rng.usize(0, 8) != 0 {
            clock += rng.f64(0.01, 1.0);
        }
        let now = SimTime::from_secs(clock);
        let file = &files[rng.usize(0, FILES)];
        match rng.usize(0, 10) {
            0..=2 => lru.add_clean(file.clone(), rng.f64(0.5, 400.0), now),
            3 | 4 => lru.add_dirty(file.clone(), rng.f64(0.5, 400.0), now),
            5 | 6 => {
                lru.read_cached(file, rng.f64(1.0, 900.0), now);
            }
            7 => {
                let exclude = (rng.usize(0, 3) == 0).then_some(file);
                lru.flush_lru(rng.f64(0.0, 900.0), exclude);
            }
            8 => {
                let exclude = (rng.usize(0, 3) == 0).then_some(file);
                lru.evict(rng.f64(0.0, 900.0), exclude);
            }
            _ => match rng.usize(0, 3) {
                0 => {
                    lru.flush_expired(now, 5.0);
                }
                1 => lru.balance(),
                _ => {
                    lru.invalidate_file(file);
                }
            },
        }

        // Every O(1) aggregate must agree with a full-scan recomputation.
        assert_close("total_cached", lru.total_cached(), scan_cached(&lru), op);
        assert_close("total_dirty", lru.total_dirty(), scan_dirty(&lru), op);
        assert_close(
            "inactive_bytes",
            lru.inactive_bytes(),
            scan_inactive(&lru),
            op,
        );
        assert_close("active_bytes", lru.active_bytes(), scan_active(&lru), op);
        assert_close(
            "evictable",
            lru.evictable(None),
            scan_evictable(&lru, None),
            op,
        );
        let probe = &files[rng.usize(0, FILES)];
        assert_close(
            "cached_amount",
            lru.cached_amount(probe),
            scan_cached_amount(&lru, probe),
            op,
        );
        assert_close(
            "dirty_amount",
            lru.dirty_amount(probe),
            scan_dirty_amount(&lru, probe),
            op,
        );
        assert_close(
            "evictable(exclude)",
            lru.evictable(Some(probe)),
            scan_evictable(&lru, Some(probe)),
            op,
        );

        // The per-file map matches a scan-built map, file by file.
        let scanned = scan_per_file(&lru);
        let reported = lru.cached_per_file();
        assert_eq!(
            reported.len(),
            scanned.len(),
            "op {op}: per-file map sizes differ"
        );
        for (f, cached) in &scanned {
            let inc = reported.get(f).copied().unwrap_or(0.0);
            assert_close("cached_per_file entry", inc, *cached, op);
        }

        // And the crate's own structural + aggregate invariants hold.
        lru.check_invariants().unwrap();
    }
    // The workload actually exercised a non-trivial cache.
    assert!(lru.block_count() > 0);
}

// ---------------------------------------------------------------------------
// Differential test: arena LRU vs a retained naive scan-based model.
// ---------------------------------------------------------------------------

use pagecache::DataBlock;
use std::collections::VecDeque;

/// A faithful port of the pre-arena `VecDeque` implementation of `LruLists`,
/// with every aggregate recomputed by scanning (no incremental counters, no
/// intrusive chains, no coalescing). It serves as the executable
/// specification the slab-arena rewrite must match byte-for-byte (within
/// `EPSILON`): same read/flush/evict results, same aggregates, under any
/// operation sequence.
#[derive(Default)]
struct NaiveLru {
    inactive: VecDeque<DataBlock>,
    active: VecDeque<DataBlock>,
}

impl NaiveLru {
    fn list(&self, active: bool) -> &VecDeque<DataBlock> {
        if active {
            &self.active
        } else {
            &self.inactive
        }
    }

    fn total_cached(&self) -> f64 {
        self.inactive
            .iter()
            .chain(&self.active)
            .map(|b| b.size)
            .sum()
    }

    fn total_dirty(&self) -> f64 {
        self.inactive
            .iter()
            .chain(&self.active)
            .filter(|b| b.dirty)
            .map(|b| b.size)
            .sum()
    }

    fn inactive_bytes(&self) -> f64 {
        self.inactive.iter().map(|b| b.size).sum()
    }

    fn active_bytes(&self) -> f64 {
        self.active.iter().map(|b| b.size).sum()
    }

    fn cached_amount(&self, file: &FileId) -> f64 {
        self.inactive
            .iter()
            .chain(&self.active)
            .filter(|b| &b.file == file)
            .map(|b| b.size)
            .sum()
    }

    fn dirty_amount(&self, file: &FileId) -> f64 {
        self.inactive
            .iter()
            .chain(&self.active)
            .filter(|b| b.dirty && &b.file == file)
            .map(|b| b.size)
            .sum()
    }

    fn evictable(&self, exclude: Option<&FileId>) -> f64 {
        self.inactive
            .iter()
            .filter(|b| !b.dirty && exclude != Some(&b.file))
            .map(|b| b.size)
            .sum()
    }

    fn insert_sorted(list: &mut VecDeque<DataBlock>, block: DataBlock) {
        match list.back() {
            None => list.push_back(block),
            Some(b) if b.last_access <= block.last_access => list.push_back(block),
            _ => {
                let pos = list.partition_point(|b| b.last_access <= block.last_access);
                list.insert(pos, block);
            }
        }
    }

    fn add_clean(&mut self, file: FileId, size: f64, now: SimTime) {
        if size <= EPSILON {
            return;
        }
        Self::insert_sorted(&mut self.inactive, DataBlock::clean(file, size, now));
        self.balance();
    }

    fn add_dirty(&mut self, file: FileId, size: f64, now: SimTime) {
        if size <= EPSILON {
            return;
        }
        Self::insert_sorted(&mut self.inactive, DataBlock::dirty(file, size, now));
        self.balance();
    }

    fn read_cached(&mut self, file: &FileId, amount: f64, now: SimTime) -> f64 {
        if amount <= EPSILON || self.cached_amount(file) <= EPSILON {
            return 0.0;
        }
        let taken = self.take_for_read(file, amount);
        let mut clean_total = 0.0;
        let mut read_total = 0.0;
        for blk in taken {
            read_total += blk.size;
            if blk.dirty {
                let promoted = DataBlock {
                    file: blk.file,
                    size: blk.size,
                    entry_time: blk.entry_time,
                    last_access: now,
                    dirty: true,
                };
                Self::insert_sorted(&mut self.active, promoted);
            } else {
                clean_total += blk.size;
            }
        }
        if clean_total > EPSILON {
            let merged = DataBlock::clean(file.clone(), clean_total, now);
            Self::insert_sorted(&mut self.active, merged);
        }
        read_total
    }

    fn take_for_read(&mut self, file: &FileId, amount: f64) -> Vec<DataBlock> {
        let mut taken = Vec::new();
        let mut remaining = amount;
        for active in [false, true] {
            let on_list: f64 = self
                .list(active)
                .iter()
                .filter(|b| &b.file == file)
                .map(|b| b.size)
                .sum();
            if on_list <= EPSILON {
                continue;
            }
            let mut from_list = 0.0;
            let mut i = 0;
            while remaining > EPSILON && from_list < on_list - EPSILON {
                let list = if active {
                    &mut self.active
                } else {
                    &mut self.inactive
                };
                if i >= list.len() {
                    break;
                }
                if &list[i].file == file {
                    if list[i].size <= remaining + EPSILON {
                        let blk = list.remove(i).expect("index checked above");
                        remaining -= blk.size;
                        from_list += blk.size;
                        taken.push(blk);
                        continue;
                    } else {
                        let head = list[i].split_off(remaining);
                        taken.push(head);
                        remaining = 0.0;
                        break;
                    }
                }
                i += 1;
            }
        }
        taken
    }

    fn flush_lru(&mut self, amount: f64, exclude: Option<&FileId>) -> f64 {
        if amount <= EPSILON || self.total_dirty() <= EPSILON {
            return 0.0;
        }
        let mut flushed = 0.0;
        for active in [false, true] {
            let list_dirty: f64 = self
                .list(active)
                .iter()
                .filter(|b| b.dirty)
                .map(|b| b.size)
                .sum();
            if list_dirty <= EPSILON {
                continue;
            }
            let mut i = 0;
            loop {
                let list = if active {
                    &mut self.active
                } else {
                    &mut self.inactive
                };
                if i >= list.len() {
                    break;
                }
                if flushed >= amount - EPSILON {
                    return flushed;
                }
                let is_candidate = list[i].dirty && exclude != Some(&list[i].file);
                if is_candidate {
                    let need = amount - flushed;
                    if list[i].size <= need + EPSILON {
                        list[i].dirty = false;
                        flushed += list[i].size;
                    } else {
                        let mut head = list[i].split_off(need);
                        head.dirty = false;
                        flushed += head.size;
                        list.insert(i, head);
                        return flushed;
                    }
                }
                i += 1;
            }
        }
        flushed
    }

    fn evict(&mut self, amount: f64, exclude: Option<&FileId>) -> f64 {
        if amount <= EPSILON {
            return 0.0;
        }
        self.balance();
        let available = self.evictable(exclude);
        if available <= EPSILON {
            return 0.0;
        }
        let target = amount.min(available);
        let mut evicted = 0.0;
        let mut i = 0;
        while i < self.inactive.len() && evicted < target - EPSILON {
            let is_candidate = !self.inactive[i].dirty && exclude != Some(&self.inactive[i].file);
            if is_candidate {
                let need = amount - evicted;
                if self.inactive[i].size <= need + EPSILON {
                    let blk = self.inactive.remove(i).expect("index checked above");
                    evicted += blk.size;
                    continue;
                } else {
                    self.inactive[i].size -= need;
                    evicted += need;
                    break;
                }
            }
            i += 1;
        }
        evicted
    }

    fn flush_expired(&mut self, now: SimTime, expire: f64) -> f64 {
        if self.total_dirty() <= EPSILON {
            return 0.0;
        }
        let mut flushed = 0.0;
        for list in [&mut self.inactive, &mut self.active] {
            for blk in list.iter_mut() {
                if blk.is_expired(now, expire) {
                    blk.dirty = false;
                    flushed += blk.size;
                }
            }
        }
        flushed
    }

    fn flush_file(&mut self, file: &FileId) -> f64 {
        let mut flushed = 0.0;
        for list in [&mut self.inactive, &mut self.active] {
            for blk in list.iter_mut() {
                if blk.dirty && &blk.file == file {
                    blk.dirty = false;
                    flushed += blk.size;
                }
            }
        }
        flushed
    }

    fn invalidate_file(&mut self, file: &FileId) -> f64 {
        let mut removed = 0.0;
        for list in [&mut self.inactive, &mut self.active] {
            list.retain(|b| {
                if &b.file == file {
                    removed += b.size;
                    false
                } else {
                    true
                }
            });
        }
        removed
    }

    fn balance(&mut self) {
        while !self.active.is_empty() && self.active_bytes() > 2.0 * self.inactive_bytes() + EPSILON
        {
            let demoted = self.active.pop_front().expect("checked non-empty");
            Self::insert_sorted(&mut self.inactive, demoted);
        }
    }
}

/// Drives the arena `LruLists` and the naive scan-based model through the
/// same 10k random operations and asserts, after every single operation,
/// that the operation results (`read_cached` / `flush_lru` / `flush_file` /
/// `evict` / `flush_expired` / `invalidate_file` returns) and every byte aggregate are
/// identical within `EPSILON`. Block *granularity* may differ (the arena
/// coalesces adjacent clean inactive blocks of one file), but no byte-level
/// observable may.
#[test]
fn arena_lru_matches_naive_scan_model_over_10k_random_ops() {
    const OPS: usize = 10_000;
    const FILES: usize = 8;
    let files: Vec<FileId> = (0..FILES)
        .map(|i| FileId::new(format!("file_{i}")))
        .collect();
    let mut rng = Rng(0xBADC0FFEE);
    let mut arena = LruLists::new();
    let mut naive = NaiveLru::default();
    let mut clock = 0.0;
    for op in 0..OPS {
        // 1-in-8 ops keep the previous timestamp: simulated events often
        // coincide (chunks of one request), and equal timestamps are what
        // arms the arena's coalescing paths — they must be covered here.
        if rng.usize(0, 8) != 0 {
            clock += rng.f64(0.01, 1.0);
        }
        let now = SimTime::from_secs(clock);
        let file = &files[rng.usize(0, FILES)];
        let (what, a, b) = match rng.usize(0, 10) {
            0..=2 => {
                let size = rng.f64(0.5, 400.0);
                arena.add_clean(file.clone(), size, now);
                naive.add_clean(file.clone(), size, now);
                ("add_clean", 0.0, 0.0)
            }
            3 | 4 => {
                let size = rng.f64(0.5, 400.0);
                arena.add_dirty(file.clone(), size, now);
                naive.add_dirty(file.clone(), size, now);
                ("add_dirty", 0.0, 0.0)
            }
            5 | 6 => {
                let amount = rng.f64(1.0, 900.0);
                (
                    "read_cached",
                    arena.read_cached(file, amount, now),
                    naive.read_cached(file, amount, now),
                )
            }
            7 => {
                let amount = rng.f64(0.0, 900.0);
                let exclude = (rng.usize(0, 3) == 0).then_some(file);
                (
                    "flush_lru",
                    arena.flush_lru(amount, exclude),
                    naive.flush_lru(amount, exclude),
                )
            }
            8 => {
                let amount = rng.f64(0.0, 900.0);
                let exclude = (rng.usize(0, 3) == 0).then_some(file);
                (
                    "evict",
                    arena.evict(amount, exclude),
                    naive.evict(amount, exclude),
                )
            }
            _ => match rng.usize(0, 3) {
                0 => (
                    "flush_expired",
                    arena.flush_expired(now, 5.0),
                    naive.flush_expired(now, 5.0),
                ),
                1 => {
                    arena.balance();
                    naive.balance();
                    ("balance", 0.0, 0.0)
                }
                2 => ("flush_file", arena.flush_file(file), naive.flush_file(file)),
                _ => (
                    "invalidate_file",
                    arena.invalidate_file(file),
                    naive.invalidate_file(file),
                ),
            },
        };
        assert_close(&format!("{what} result"), a, b, op);
        assert_close(
            "total_cached",
            arena.total_cached(),
            naive.total_cached(),
            op,
        );
        assert_close("total_dirty", arena.total_dirty(), naive.total_dirty(), op);
        assert_close(
            "inactive_bytes",
            arena.inactive_bytes(),
            naive.inactive_bytes(),
            op,
        );
        assert_close(
            "active_bytes",
            arena.active_bytes(),
            naive.active_bytes(),
            op,
        );
        assert_close(
            "evictable",
            arena.evictable(None),
            naive.evictable(None),
            op,
        );
        let probe = &files[rng.usize(0, FILES)];
        assert_close(
            "cached_amount",
            arena.cached_amount(probe),
            naive.cached_amount(probe),
            op,
        );
        assert_close(
            "dirty_amount",
            arena.dirty_amount(probe),
            naive.dirty_amount(probe),
            op,
        );
        assert_close(
            "evictable(exclude)",
            arena.evictable(Some(probe)),
            naive.evictable(Some(probe)),
            op,
        );
        arena.check_invariants().unwrap();
    }
    assert!(arena.block_count() > 0);
    // Coalescing can only reduce block granularity, never add to it.
    let naive_blocks = naive.inactive.len() + naive.active.len();
    assert!(
        arena.block_count() <= naive_blocks,
        "arena has {} blocks, naive {}",
        arena.block_count(),
        naive_blocks
    );
}

// ---------------------------------------------------------------------------
// Differential policy oracles: arena under each eviction policy vs a naive
// generalized tier model driving its own copy of the same policy state.
// ---------------------------------------------------------------------------

use pagecache::{EvictionPolicy, ReplacementPolicy, MAX_TIERS};

/// A block plus its CLOCK reference bit — the naive model keeps the bit per
/// block, exactly like the arena's `Node`.
struct NBlock {
    block: DataBlock,
    referenced: bool,
}

/// A generalized scan-based model of `LruLists` under any
/// [`ReplacementPolicy`]: up to [`MAX_TIERS`] `VecDeque` tiers sorted by last
/// access, no incremental counters, no coalescing. It owns its own copy of
/// the policy state and calls the tier hooks in exactly the sequence the
/// arena does (one `insert_tier` per add, one `promote_tier` per cached
/// read, `on_evict` per reclaimed block), so stateful policies (2Q's ghost
/// FIFO, MGLRU's aging ring) evolve identically on both sides. `on_evict`
/// call counts may differ where the arena coalesced adjacent blocks, which
/// is safe because 2Q's ghost insert is push-if-absent.
struct NaivePolicy {
    tiers: [VecDeque<NBlock>; MAX_TIERS],
    policy: Box<dyn ReplacementPolicy>,
    evictable_mask: [bool; MAX_TIERS],
}

impl NaivePolicy {
    fn new(kind: EvictionPolicy) -> Self {
        let policy = kind.build();
        let evictable_mask = policy.evictable_tiers();
        NaivePolicy {
            tiers: std::array::from_fn(|_| VecDeque::new()),
            policy,
            evictable_mask,
        }
    }

    fn tier_bytes(&self) -> [f64; MAX_TIERS] {
        std::array::from_fn(|t| self.tiers[t].iter().map(|n| n.block.size).sum())
    }

    fn tier_lens(&self) -> [usize; MAX_TIERS] {
        std::array::from_fn(|t| self.tiers[t].len())
    }

    fn blocks(&self) -> impl Iterator<Item = &DataBlock> {
        self.tiers.iter().flatten().map(|n| &n.block)
    }

    fn total_cached(&self) -> f64 {
        self.blocks().map(|b| b.size).sum()
    }

    fn total_dirty(&self) -> f64 {
        self.blocks().filter(|b| b.dirty).map(|b| b.size).sum()
    }

    fn inactive_bytes(&self) -> f64 {
        (0..MAX_TIERS)
            .filter(|&t| self.evictable_mask[t])
            .flat_map(|t| &self.tiers[t])
            .map(|n| n.block.size)
            .sum()
    }

    fn active_bytes(&self) -> f64 {
        (0..MAX_TIERS)
            .filter(|&t| !self.evictable_mask[t])
            .flat_map(|t| &self.tiers[t])
            .map(|n| n.block.size)
            .sum()
    }

    fn cached_amount(&self, file: &FileId) -> f64 {
        self.blocks()
            .filter(|b| &b.file == file)
            .map(|b| b.size)
            .sum()
    }

    fn dirty_amount(&self, file: &FileId) -> f64 {
        self.blocks()
            .filter(|b| b.dirty && &b.file == file)
            .map(|b| b.size)
            .sum()
    }

    fn evictable(&self, exclude: Option<&FileId>) -> f64 {
        (0..MAX_TIERS)
            .filter(|&t| self.evictable_mask[t])
            .flat_map(|t| &self.tiers[t])
            .filter(|n| !n.block.dirty && exclude != Some(&n.block.file))
            .map(|n| n.block.size)
            .sum()
    }

    fn insert_sorted(list: &mut VecDeque<NBlock>, node: NBlock) {
        match list.back() {
            None => list.push_back(node),
            Some(b) if b.block.last_access <= node.block.last_access => list.push_back(node),
            _ => {
                let pos = list.partition_point(|b| b.block.last_access <= node.block.last_access);
                list.insert(pos, node);
            }
        }
    }

    fn add_clean(&mut self, file: FileId, size: f64, now: SimTime) {
        if size <= EPSILON {
            return;
        }
        let bytes = self.tier_bytes();
        let tier = self.policy.insert_tier(&file, &bytes);
        Self::insert_sorted(
            &mut self.tiers[tier],
            NBlock {
                block: DataBlock::clean(file, size, now),
                referenced: false,
            },
        );
        self.balance();
    }

    fn add_dirty(&mut self, file: FileId, size: f64, now: SimTime) {
        if size <= EPSILON {
            return;
        }
        let bytes = self.tier_bytes();
        let tier = self.policy.insert_tier(&file, &bytes);
        Self::insert_sorted(
            &mut self.tiers[tier],
            NBlock {
                block: DataBlock::dirty(file, size, now),
                referenced: false,
            },
        );
        self.balance();
    }

    fn read_cached(&mut self, file: &FileId, amount: f64, now: SimTime) -> f64 {
        if amount <= EPSILON || self.cached_amount(file) <= EPSILON {
            return 0.0;
        }
        let bytes = self.tier_bytes();
        let dest = self.policy.promote_tier(file, &bytes);
        let referenced = self.policy.uses_reference_bits();
        let taken = self.take_for_read(file, amount);
        let mut clean_total = 0.0;
        let mut read_total = 0.0;
        for blk in taken {
            read_total += blk.size;
            if blk.dirty {
                let promoted = DataBlock {
                    file: blk.file,
                    size: blk.size,
                    entry_time: blk.entry_time,
                    last_access: now,
                    dirty: true,
                };
                Self::insert_sorted(
                    &mut self.tiers[dest],
                    NBlock {
                        block: promoted,
                        referenced,
                    },
                );
            } else {
                clean_total += blk.size;
            }
        }
        if clean_total > EPSILON {
            let merged = DataBlock::clean(file.clone(), clean_total, now);
            Self::insert_sorted(
                &mut self.tiers[dest],
                NBlock {
                    block: merged,
                    referenced,
                },
            );
        }
        read_total
    }

    fn take_for_read(&mut self, file: &FileId, amount: f64) -> Vec<DataBlock> {
        let mut taken = Vec::new();
        let mut remaining = amount;
        for tier in self.policy.tier_order() {
            if remaining <= EPSILON {
                break;
            }
            let list = &mut self.tiers[tier];
            let mut i = 0;
            while i < list.len() && remaining > EPSILON {
                if &list[i].block.file == file {
                    if list[i].block.size <= remaining + EPSILON {
                        let n = list.remove(i).expect("index checked above");
                        remaining -= n.block.size;
                        taken.push(n.block);
                        continue;
                    } else {
                        let head = list[i].block.split_off(remaining);
                        taken.push(head);
                        remaining = 0.0;
                        break;
                    }
                }
                i += 1;
            }
        }
        taken
    }

    fn flush_lru(&mut self, amount: f64, exclude: Option<&FileId>) -> f64 {
        if amount <= EPSILON || self.total_dirty() <= EPSILON {
            return 0.0;
        }
        let mut flushed = 0.0;
        for t in self.policy.tier_order() {
            let tier_dirty: f64 = self.tiers[t]
                .iter()
                .filter(|n| n.block.dirty)
                .map(|n| n.block.size)
                .sum();
            if tier_dirty <= EPSILON {
                continue;
            }
            let mut i = 0;
            while i < self.tiers[t].len() {
                if flushed >= amount - EPSILON {
                    return flushed;
                }
                let is_candidate =
                    self.tiers[t][i].block.dirty && exclude != Some(&self.tiers[t][i].block.file);
                if is_candidate {
                    let need = amount - flushed;
                    let size = self.tiers[t][i].block.size;
                    if size <= need + EPSILON {
                        self.tiers[t][i].block.dirty = false;
                        flushed += size;
                    } else {
                        let referenced = self.tiers[t][i].referenced;
                        let mut head = self.tiers[t][i].block.split_off(need);
                        head.dirty = false;
                        flushed += head.size;
                        self.tiers[t].insert(
                            i,
                            NBlock {
                                block: head,
                                referenced,
                            },
                        );
                        return flushed;
                    }
                }
                i += 1;
            }
        }
        flushed
    }

    fn evict(&mut self, amount: f64, exclude: Option<&FileId>) -> f64 {
        if amount <= EPSILON {
            return 0.0;
        }
        self.balance();
        let available = self.evictable(exclude);
        if available <= EPSILON {
            return 0.0;
        }
        let target = amount.min(available);
        let mut evicted = 0.0;
        let order = self.policy.tier_order();
        let use_ref = self.policy.uses_reference_bits();
        let passes = if use_ref { 2 } else { 1 };
        'reclaim: for pass in 0..passes {
            for t in order {
                if !self.evictable_mask[t] {
                    continue;
                }
                let mut i = 0;
                while i < self.tiers[t].len() && evicted < target - EPSILON {
                    let is_candidate = {
                        let b = &self.tiers[t][i].block;
                        !b.dirty && exclude != Some(&b.file)
                    };
                    if is_candidate {
                        if pass == 0 && use_ref && self.tiers[t][i].referenced {
                            // Second chance: spare the block once.
                            self.tiers[t][i].referenced = false;
                        } else {
                            let need = amount - evicted;
                            let size = self.tiers[t][i].block.size;
                            if size <= need + EPSILON {
                                let n = self.tiers[t].remove(i).expect("index checked above");
                                evicted += n.block.size;
                                self.policy.on_evict(&n.block.file, t);
                                continue;
                            } else {
                                self.tiers[t][i].block.size -= need;
                                let file = self.tiers[t][i].block.file.clone();
                                evicted += need;
                                self.policy.on_evict(&file, t);
                                break 'reclaim;
                            }
                        }
                    }
                    i += 1;
                }
                if evicted >= target - EPSILON {
                    break 'reclaim;
                }
            }
        }
        evicted
    }

    fn flush_expired(&mut self, now: SimTime, expire: f64) -> f64 {
        if self.total_dirty() <= EPSILON {
            return 0.0;
        }
        let mut flushed = 0.0;
        for list in &mut self.tiers {
            for n in list.iter_mut() {
                if n.block.is_expired(now, expire) {
                    n.block.dirty = false;
                    flushed += n.block.size;
                }
            }
        }
        flushed
    }

    fn flush_file(&mut self, file: &FileId) -> f64 {
        let mut flushed = 0.0;
        for list in &mut self.tiers {
            for n in list.iter_mut() {
                if n.block.dirty && &n.block.file == file {
                    n.block.dirty = false;
                    flushed += n.block.size;
                }
            }
        }
        flushed
    }

    fn invalidate_file(&mut self, file: &FileId) -> f64 {
        let mut removed = 0.0;
        for list in &mut self.tiers {
            list.retain(|n| {
                if &n.block.file == file {
                    removed += n.block.size;
                    false
                } else {
                    true
                }
            });
        }
        removed
    }

    fn balance(&mut self) {
        loop {
            let bytes = self.tier_bytes();
            let lens = self.tier_lens();
            let Some((from, to)) = self.policy.demotion(&bytes, &lens) else {
                break;
            };
            let demoted = self.tiers[from]
                .pop_front()
                .expect("demotion from empty tier");
            Self::insert_sorted(
                &mut self.tiers[to],
                NBlock {
                    block: demoted.block,
                    referenced: false,
                },
            );
        }
    }
}

/// Drives the arena under `kind` and the naive generalized model through the
/// same 10k random operations, asserting after every single one that the
/// operation results and every byte aggregate — including the per-tier byte
/// and dirty totals, which pin down identical victim selection — agree
/// within `EPSILON`.
fn arena_matches_naive_policy_model(kind: EvictionPolicy, seed: u64) {
    const OPS: usize = 10_000;
    const FILES: usize = 8;
    let files: Vec<FileId> = (0..FILES)
        .map(|i| FileId::new(format!("file_{i}")))
        .collect();
    let mut rng = Rng(seed);
    let mut arena = LruLists::with_policy(kind);
    let mut naive = NaivePolicy::new(kind);
    let mut clock = 0.0;
    for op in 0..OPS {
        // Same timestamp-coincidence mix as the 2-list differential test:
        // equal timestamps arm the arena's coalescing paths.
        if rng.usize(0, 8) != 0 {
            clock += rng.f64(0.01, 1.0);
        }
        let now = SimTime::from_secs(clock);
        let file = &files[rng.usize(0, FILES)];
        let (what, a, b) = match rng.usize(0, 10) {
            0..=2 => {
                let size = rng.f64(0.5, 400.0);
                arena.add_clean(file.clone(), size, now);
                naive.add_clean(file.clone(), size, now);
                ("add_clean", 0.0, 0.0)
            }
            3 | 4 => {
                let size = rng.f64(0.5, 400.0);
                arena.add_dirty(file.clone(), size, now);
                naive.add_dirty(file.clone(), size, now);
                ("add_dirty", 0.0, 0.0)
            }
            5 | 6 => {
                let amount = rng.f64(1.0, 900.0);
                (
                    "read_cached",
                    arena.read_cached(file, amount, now),
                    naive.read_cached(file, amount, now),
                )
            }
            7 => {
                let amount = rng.f64(0.0, 900.0);
                let exclude = (rng.usize(0, 3) == 0).then_some(file);
                (
                    "flush_lru",
                    arena.flush_lru(amount, exclude),
                    naive.flush_lru(amount, exclude),
                )
            }
            8 => {
                let amount = rng.f64(0.0, 900.0);
                let exclude = (rng.usize(0, 3) == 0).then_some(file);
                (
                    "evict",
                    arena.evict(amount, exclude),
                    naive.evict(amount, exclude),
                )
            }
            _ => match rng.usize(0, 3) {
                0 => (
                    "flush_expired",
                    arena.flush_expired(now, 5.0),
                    naive.flush_expired(now, 5.0),
                ),
                1 => {
                    arena.balance();
                    naive.balance();
                    ("balance", 0.0, 0.0)
                }
                2 => ("flush_file", arena.flush_file(file), naive.flush_file(file)),
                _ => (
                    "invalidate_file",
                    arena.invalidate_file(file),
                    naive.invalidate_file(file),
                ),
            },
        };
        assert_close(&format!("{kind}: {what} result"), a, b, op);
        // Per-tier totals, not just the evictable/protected split: stateful
        // policies (MGLRU's ring, 2Q's ghosts) take per-tier bytes as their
        // decision input, so any drift here would snowball into different
        // victims.
        for t in 0..MAX_TIERS {
            let arena_bytes: f64 = arena.tier_blocks(t).map(|b| b.size).sum();
            let arena_dirty: f64 = arena
                .tier_blocks(t)
                .filter(|b| b.dirty)
                .map(|b| b.size)
                .sum();
            let naive_bytes: f64 = naive.tiers[t].iter().map(|n| n.block.size).sum();
            let naive_dirty: f64 = naive.tiers[t]
                .iter()
                .filter(|n| n.block.dirty)
                .map(|n| n.block.size)
                .sum();
            assert_close(
                &format!("{kind}: tier {t} bytes"),
                arena_bytes,
                naive_bytes,
                op,
            );
            assert_close(
                &format!("{kind}: tier {t} dirty"),
                arena_dirty,
                naive_dirty,
                op,
            );
        }
        assert_close(
            &format!("{kind}: total_cached"),
            arena.total_cached(),
            naive.total_cached(),
            op,
        );
        assert_close(
            &format!("{kind}: total_dirty"),
            arena.total_dirty(),
            naive.total_dirty(),
            op,
        );
        assert_close(
            &format!("{kind}: inactive_bytes"),
            arena.inactive_bytes(),
            naive.inactive_bytes(),
            op,
        );
        assert_close(
            &format!("{kind}: active_bytes"),
            arena.active_bytes(),
            naive.active_bytes(),
            op,
        );
        assert_close(
            &format!("{kind}: evictable"),
            arena.evictable(None),
            naive.evictable(None),
            op,
        );
        let probe = &files[rng.usize(0, FILES)];
        assert_close(
            &format!("{kind}: cached_amount"),
            arena.cached_amount(probe),
            naive.cached_amount(probe),
            op,
        );
        assert_close(
            &format!("{kind}: dirty_amount"),
            arena.dirty_amount(probe),
            naive.dirty_amount(probe),
            op,
        );
        assert_close(
            &format!("{kind}: evictable(exclude)"),
            arena.evictable(Some(probe)),
            naive.evictable(Some(probe)),
            op,
        );
        arena.check_invariants().unwrap();
    }
    assert!(arena.block_count() > 0);
    // Coalescing can only reduce block granularity, never add to it.
    let naive_blocks: usize = naive.tiers.iter().map(|l| l.len()).sum();
    assert!(
        arena.block_count() <= naive_blocks,
        "{kind}: arena has {} blocks, naive {}",
        arena.block_count(),
        naive_blocks
    );
}

#[test]
fn arena_two_list_matches_generalized_naive_model_over_10k_random_ops() {
    // The generalized model must reduce to the 2-list one when driven by the
    // default policy; this also cross-checks the two naive models.
    arena_matches_naive_policy_model(EvictionPolicy::TwoList, 0xBADC0FFEE);
}

#[test]
fn arena_clock_matches_naive_model_over_10k_random_ops() {
    arena_matches_naive_policy_model(EvictionPolicy::Clock, 0xC10C4);
}

#[test]
fn arena_two_q_matches_naive_model_over_10k_random_ops() {
    arena_matches_naive_policy_model(EvictionPolicy::TwoQ, 0x7707);
}

#[test]
fn arena_mglru_matches_naive_model_over_10k_random_ops() {
    arena_matches_naive_policy_model(EvictionPolicy::MglruGen, 0x91123);
}
