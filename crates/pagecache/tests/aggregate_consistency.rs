//! Randomized consistency test for the incremental LRU aggregates.
//!
//! `LruLists` answers `total_cached`, `total_dirty`, `inactive_bytes`,
//! `active_bytes`, `cached_amount`, `dirty_amount`, `cached_per_file` and
//! `evictable` from incrementally maintained counters. This test applies ~10k
//! random add/read/flush/evict (plus expiry, balance and invalidation)
//! operations and, after **every** operation, recomputes each aggregate from
//! a full scan of the block lists and asserts the incremental answer agrees
//! within `EPSILON`. The scan here is written against the public block
//! iterators, independently of the `recompute_*` oracles inside the crate.

use std::collections::BTreeMap;

use des::SimTime;
use pagecache::{FileId, LruLists, EPSILON};

/// Deterministic xorshift64* PRNG (crates.io is unreachable in this build
/// environment, so no `rand`).
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn f64(&mut self, lo: f64, hi: f64) -> f64 {
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + u * (hi - lo)
    }

    fn usize(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() as usize) % (hi - lo)
    }
}

fn scan_cached(lru: &LruLists) -> f64 {
    lru.iter_all().map(|b| b.size).sum()
}

fn scan_dirty(lru: &LruLists) -> f64 {
    lru.iter_all().filter(|b| b.dirty).map(|b| b.size).sum()
}

fn scan_inactive(lru: &LruLists) -> f64 {
    lru.inactive_blocks().iter().map(|b| b.size).sum()
}

fn scan_active(lru: &LruLists) -> f64 {
    lru.active_blocks().iter().map(|b| b.size).sum()
}

fn scan_cached_amount(lru: &LruLists, file: &FileId) -> f64 {
    lru.iter_all()
        .filter(|b| &b.file == file)
        .map(|b| b.size)
        .sum()
}

fn scan_dirty_amount(lru: &LruLists, file: &FileId) -> f64 {
    lru.iter_all()
        .filter(|b| b.dirty && &b.file == file)
        .map(|b| b.size)
        .sum()
}

fn scan_evictable(lru: &LruLists, exclude: Option<&FileId>) -> f64 {
    lru.inactive_blocks()
        .iter()
        .filter(|b| !b.dirty && (exclude != Some(&b.file)))
        .map(|b| b.size)
        .sum()
}

fn scan_per_file(lru: &LruLists) -> BTreeMap<FileId, f64> {
    let mut map = BTreeMap::new();
    for b in lru.iter_all() {
        *map.entry(b.file.clone()).or_insert(0.0) += b.size;
    }
    map
}

fn assert_close(what: &str, incremental: f64, scanned: f64, op: usize) {
    assert!(
        (incremental - scanned).abs() < EPSILON + 1e-9 * scanned.abs(),
        "op {op}: {what}: incremental {incremental} != scan {scanned}"
    );
}

#[test]
fn incremental_aggregates_match_full_scan_over_10k_random_ops() {
    const OPS: usize = 10_000;
    const FILES: usize = 8;
    let files: Vec<FileId> = (0..FILES)
        .map(|i| FileId::new(format!("file_{i}")))
        .collect();
    let mut rng = Rng(0xDEC0DE);
    let mut lru = LruLists::new();
    let mut clock = 0.0;
    for op in 0..OPS {
        clock += rng.f64(0.01, 1.0);
        let now = SimTime::from_secs(clock);
        let file = &files[rng.usize(0, FILES)];
        match rng.usize(0, 10) {
            0..=2 => lru.add_clean(file.clone(), rng.f64(0.5, 400.0), now),
            3 | 4 => lru.add_dirty(file.clone(), rng.f64(0.5, 400.0), now),
            5 | 6 => {
                lru.read_cached(file, rng.f64(1.0, 900.0), now);
            }
            7 => {
                let exclude = (rng.usize(0, 3) == 0).then_some(file);
                lru.flush_lru(rng.f64(0.0, 900.0), exclude);
            }
            8 => {
                let exclude = (rng.usize(0, 3) == 0).then_some(file);
                lru.evict(rng.f64(0.0, 900.0), exclude);
            }
            _ => match rng.usize(0, 3) {
                0 => {
                    lru.flush_expired(now, 5.0);
                }
                1 => lru.balance(),
                _ => {
                    lru.invalidate_file(file);
                }
            },
        }

        // Every O(1) aggregate must agree with a full-scan recomputation.
        assert_close("total_cached", lru.total_cached(), scan_cached(&lru), op);
        assert_close("total_dirty", lru.total_dirty(), scan_dirty(&lru), op);
        assert_close(
            "inactive_bytes",
            lru.inactive_bytes(),
            scan_inactive(&lru),
            op,
        );
        assert_close("active_bytes", lru.active_bytes(), scan_active(&lru), op);
        assert_close(
            "evictable",
            lru.evictable(None),
            scan_evictable(&lru, None),
            op,
        );
        let probe = &files[rng.usize(0, FILES)];
        assert_close(
            "cached_amount",
            lru.cached_amount(probe),
            scan_cached_amount(&lru, probe),
            op,
        );
        assert_close(
            "dirty_amount",
            lru.dirty_amount(probe),
            scan_dirty_amount(&lru, probe),
            op,
        );
        assert_close(
            "evictable(exclude)",
            lru.evictable(Some(probe)),
            scan_evictable(&lru, Some(probe)),
            op,
        );

        // The per-file map matches a scan-built map, file by file.
        let scanned = scan_per_file(&lru);
        let reported = lru.cached_per_file();
        assert_eq!(
            reported.len(),
            scanned.len(),
            "op {op}: per-file map sizes differ"
        );
        for (f, cached) in &scanned {
            let inc = reported.get(f).copied().unwrap_or(0.0);
            assert_close("cached_per_file entry", inc, *cached, op);
        }

        // And the crate's own structural + aggregate invariants hold.
        lru.check_invariants().unwrap();
    }
    // The workload actually exercised a non-trivial cache.
    assert!(lru.block_count() > 0);
}
