//! The Memory Manager (paper §III-A).
//!
//! The Memory Manager owns the LRU lists and the memory accounting of one
//! host. Its *main thread* operations (flushing, eviction, cached reads and
//! writes) are invoked synchronously by the I/O controller; its *background
//! thread* — the periodical flusher — runs as a separate simulated process
//! and writes back expired dirty data (Algorithm 1). Disk and memory transfer
//! times are delegated to the flow-level storage models, so concurrent
//! accesses from several applications naturally share bandwidth.
//!
//! The underlying [`LruLists`] are an intrusive slab arena with per-file and
//! per-list dirty chains, so the per-request operations the controller drives
//! scale with the data they touch, not with the total cache population:
//! [`MemoryManager::read_from_cache`] and [`MemoryManager::invalidate_file`]
//! visit only the target file's blocks, [`MemoryManager::flush`] and
//! [`MemoryManager::flush_expired`] only dirty blocks, and every byte
//! aggregate the controller polls is O(1).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use des::{JoinHandle, SimContext};
use storage_model::{Disk, MemoryDevice};

use crate::block::FileId;
use crate::config::PageCacheConfig;
use crate::lru::{LruLists, EPSILON};
use crate::stats::{CacheContentSnapshot, MemorySample, MemoryTrace};

/// Aggregate counters maintained by the Memory Manager.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct MemoryManagerCounters {
    /// Bytes flushed synchronously (because of memory pressure or the dirty
    /// ratio).
    pub flushed_on_demand: f64,
    /// Bytes flushed by the background periodical flusher.
    pub flushed_background: f64,
    /// Bytes evicted from the cache.
    pub evicted: f64,
    /// Number of wakeups of the periodical flusher.
    pub flusher_runs: u64,
}

struct MmState {
    lru: LruLists,
    anonymous: f64,
    trace: MemoryTrace,
    counters: MemoryManagerCounters,
    stop_flusher: bool,
}

/// The simulated Memory Manager of one host. Cloning returns another handle
/// to the same manager.
#[derive(Clone)]
pub struct MemoryManager {
    ctx: SimContext,
    memory: MemoryDevice,
    disk: Disk,
    config: PageCacheConfig,
    state: Rc<RefCell<MmState>>,
}

impl MemoryManager {
    /// Creates a Memory Manager for a host with the given page-cache
    /// configuration, memory bus and backing disk (the disk dirty data is
    /// flushed to).
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    pub fn new(
        ctx: &SimContext,
        config: PageCacheConfig,
        memory: MemoryDevice,
        disk: Disk,
    ) -> Self {
        config.validate().expect("invalid page cache configuration");
        MemoryManager {
            ctx: ctx.clone(),
            memory,
            disk,
            config,
            state: Rc::new(RefCell::new(MmState {
                lru: LruLists::with_policy(config.eviction_policy),
                anonymous: 0.0,
                trace: MemoryTrace::new(),
                counters: MemoryManagerCounters::default(),
                stop_flusher: false,
            })),
        }
    }

    /// The configuration this manager was created with.
    pub fn config(&self) -> &PageCacheConfig {
        &self.config
    }

    /// The backing disk used for flushes.
    pub fn disk(&self) -> &Disk {
        &self.disk
    }

    /// The memory bus used for cache hits and cache writes.
    pub fn memory(&self) -> &MemoryDevice {
        &self.memory
    }

    /// Total RAM of the host in bytes.
    pub fn total_memory(&self) -> f64 {
        self.config.total_memory
    }

    /// Page cache size (clean + dirty), in bytes.
    pub fn cached(&self) -> f64 {
        self.state.borrow().lru.total_cached()
    }

    /// Dirty page cache data, in bytes.
    pub fn dirty(&self) -> f64 {
        self.state.borrow().lru.total_dirty()
    }

    /// Anonymous (application) memory in use, in bytes.
    pub fn anonymous(&self) -> f64 {
        self.state.borrow().anonymous
    }

    /// Free memory: total minus cache minus anonymous memory (clamped at 0).
    pub fn free_memory(&self) -> f64 {
        let s = self.state.borrow();
        (self.config.total_memory - s.lru.total_cached() - s.anonymous).max(0.0)
    }

    /// Memory available to the page cache: total minus anonymous memory. This
    /// is the base of the dirty-ratio computation (paper Algorithm 3, line 5).
    pub fn available_memory(&self) -> f64 {
        (self.config.total_memory - self.state.borrow().anonymous).max(0.0)
    }

    /// How much more dirty data may be produced before writers must flush:
    /// `dirty_ratio * available_memory - dirty` (can be negative).
    pub fn dirty_headroom(&self) -> f64 {
        self.config.dirty_ratio * self.available_memory() - self.dirty()
    }

    /// Clean bytes of the inactive list that could be evicted, optionally
    /// excluding one file.
    pub fn evictable(&self, exclude: Option<&FileId>) -> f64 {
        self.state.borrow().lru.evictable(exclude)
    }

    /// Cached bytes of a given file.
    pub fn cached_amount(&self, file: &FileId) -> f64 {
        self.state.borrow().lru.cached_amount(file)
    }

    /// Dirty bytes of a given file.
    pub fn dirty_amount(&self, file: &FileId) -> f64 {
        self.state.borrow().lru.dirty_amount(file)
    }

    /// Cached bytes per file.
    pub fn cached_per_file(&self) -> BTreeMap<FileId, f64> {
        self.state.borrow().lru.cached_per_file()
    }

    /// Number of data blocks currently in the LRU lists.
    pub fn block_count(&self) -> usize {
        self.state.borrow().lru.block_count()
    }

    /// Aggregate counters (flushed/evicted bytes, flusher runs).
    pub fn counters(&self) -> MemoryManagerCounters {
        self.state.borrow().counters
    }

    /// Runs the LRU invariant checks (for tests).
    pub fn check_invariants(&self) -> Result<(), String> {
        self.state.borrow().lru.check_invariants()
    }

    /// Registers `amount` bytes of anonymous application memory.
    pub fn use_anonymous_memory(&self, amount: f64) {
        if amount <= 0.0 {
            return;
        }
        self.state.borrow_mut().anonymous += amount;
    }

    /// Releases anonymous application memory (saturating at zero), e.g. when
    /// a task completes.
    pub fn release_anonymous_memory(&self, amount: f64) {
        if amount <= 0.0 {
            return;
        }
        let mut s = self.state.borrow_mut();
        s.anonymous = (s.anonymous - amount).max(0.0);
    }

    /// Adds clean data to the cache (data that was just read from disk, or
    /// written through to disk). Takes no simulated time: the corresponding
    /// device transfer has already been simulated by the caller.
    pub fn add_to_cache(&self, file: &FileId, amount: f64) {
        if amount <= EPSILON {
            return;
        }
        let now = self.ctx.now();
        self.state
            .borrow_mut()
            .lru
            .add_clean(file.clone(), amount, now);
    }

    /// Evicts up to `amount` bytes of clean data from the inactive list
    /// (paper §III-A-3). Eviction takes no simulated time ("cache eviction
    /// time is negligible in real systems"). Returns the number of bytes
    /// evicted. Non-positive amounts are a no-op.
    pub fn evict(&self, amount: f64, exclude: Option<&FileId>) -> f64 {
        let mut s = self.state.borrow_mut();
        let evicted = s.lru.evict(amount, exclude);
        s.counters.evicted += evicted;
        evicted
    }

    /// Flushes up to `amount` bytes of dirty data to disk, least recently used
    /// first, optionally excluding a file (paper §III-A-3). The disk write
    /// time is simulated. Returns the number of bytes flushed. Non-positive
    /// amounts are a no-op.
    pub async fn flush(&self, amount: f64, exclude: Option<&FileId>) -> f64 {
        let flushed = {
            let mut s = self.state.borrow_mut();
            let flushed = s.lru.flush_lru(amount, exclude);
            s.counters.flushed_on_demand += flushed;
            flushed
        };
        if flushed > EPSILON {
            self.disk.write(flushed).await;
        }
        flushed
    }

    /// Flushes every dirty byte of one file to disk (the cache side of an
    /// `fsync`): walks only the file's own chains — O(file's blocks) — and
    /// simulates the disk write. Counted as synchronous (on-demand) flushing.
    /// Returns the number of bytes written back.
    pub async fn flush_file(&self, file: &FileId) -> f64 {
        let flushed = {
            let mut s = self.state.borrow_mut();
            let flushed = s.lru.flush_file(file);
            s.counters.flushed_on_demand += flushed;
            flushed
        };
        if flushed > EPSILON {
            self.disk.write(flushed).await;
        }
        flushed
    }

    /// Reads `amount` bytes of `file` from the cache: updates the LRU lists
    /// (promotions, merges, splits) and simulates the memory read. Returns the
    /// number of bytes that were actually cached.
    pub async fn read_from_cache(&self, file: &FileId, amount: f64) -> f64 {
        let read = {
            let now = self.ctx.now();
            let mut s = self.state.borrow_mut();
            s.lru.read_cached(file, amount, now)
        };
        if read > EPSILON {
            self.memory.read(read).await;
        }
        read
    }

    /// Writes `amount` bytes of `file` into the cache as dirty data: simulates
    /// the memory write and creates a dirty block on the inactive list.
    pub async fn write_to_cache(&self, file: &FileId, amount: f64) {
        if amount <= EPSILON {
            return;
        }
        self.memory.write(amount).await;
        let now = self.ctx.now();
        self.state
            .borrow_mut()
            .lru
            .add_dirty(file.clone(), amount, now);
    }

    /// Drops every cached block of `file` (file deletion). Returns the number
    /// of bytes invalidated.
    pub fn invalidate_file(&self, file: &FileId) -> f64 {
        self.state.borrow_mut().lru.invalidate_file(file)
    }

    /// Assigns `file` to cache group `group` (a tenant, in memcg terms), or
    /// clears the assignment with `None`. The file's cached and dirty bytes
    /// move to the new group's aggregates; future cache traffic for the file
    /// is attributed there. Assignments survive eviction and crashes — they
    /// are configuration, not cache state.
    pub fn set_file_group(&self, file: &FileId, group: Option<u32>) {
        self.state
            .borrow_mut()
            .lru
            .set_file_group(file.clone(), group);
    }

    /// Cached bytes (clean + dirty) currently attributed to a cache group.
    pub fn group_cached(&self, group: u32) -> f64 {
        self.state.borrow().lru.group_cached(group)
    }

    /// Dirty bytes currently attributed to a cache group.
    pub fn group_dirty(&self, group: u32) -> f64 {
        self.state.borrow().lru.group_dirty(group)
    }

    /// Evicts up to `amount` bytes of clean data belonging to one cache
    /// group, least recently used first. Like [`MemoryManager::evict`] it
    /// takes no simulated time. Returns the number of bytes evicted.
    pub fn evict_group(&self, amount: f64, group: u32) -> f64 {
        let mut s = self.state.borrow_mut();
        let evicted = s.lru.evict_group(amount, group);
        s.counters.evicted += evicted;
        evicted
    }

    /// Flushes up to `amount` bytes of one cache group's dirty data to disk,
    /// least recently used first. The disk write time is simulated; the bytes
    /// are counted as synchronous (on-demand) flushing. Returns the number of
    /// bytes written back.
    pub async fn flush_group(&self, amount: f64, group: u32) -> f64 {
        let flushed = {
            let mut s = self.state.borrow_mut();
            let flushed = s.lru.flush_group(amount, group);
            s.counters.flushed_on_demand += flushed;
            flushed
        };
        if flushed > EPSILON {
            self.disk.write(flushed).await;
        }
        flushed
    }

    /// Enforces memcg-style limits on one cache group: first writes back the
    /// group's dirty data above `max_dirty`, then evicts the group's clean
    /// data above `max_bytes`; if the group still exceeds its cap because the
    /// overflow is dirty, that remainder is flushed and evicted too. Disk
    /// write time is simulated. Returns `(evicted, flushed)` byte totals.
    pub async fn enforce_group_limits(
        &self,
        group: u32,
        max_bytes: f64,
        max_dirty: f64,
    ) -> (f64, f64) {
        let mut flushed = 0.0;
        let over_dirty = self.group_dirty(group) - max_dirty;
        if over_dirty > EPSILON {
            flushed += self.flush_group(over_dirty, group).await;
        }
        let mut evicted = 0.0;
        let over = self.group_cached(group) - max_bytes;
        if over > EPSILON {
            evicted += self.evict_group(over, group);
        }
        // Whatever is still above the cap must be dirty: clean it, then
        // evict again.
        let still_over = self.group_cached(group) - max_bytes;
        if still_over > EPSILON {
            flushed += self.flush_group(still_over, group).await;
            let rest = self.group_cached(group) - max_bytes;
            if rest > EPSILON {
                evicted += self.evict_group(rest, group);
            }
        }
        (evicted, flushed)
    }

    /// Simulated power loss: drops the entire page cache (clean and dirty)
    /// and all anonymous memory, and returns the dirty bytes each file lost
    /// — the data that had not reached stable storage. Takes no simulated
    /// time; the trace and counters survive (they describe the run, not the
    /// volatile state).
    pub fn crash_discard(&self) -> Vec<(FileId, f64)> {
        let files: Vec<FileId> = self.cached_per_file().into_keys().collect();
        let mut lost = Vec::new();
        for file in files {
            let dirty = self.dirty_amount(&file);
            if dirty > EPSILON {
                lost.push((file.clone(), dirty));
            }
            self.invalidate_file(&file);
        }
        self.state.borrow_mut().anonymous = 0.0;
        lost
    }

    /// Flushes all expired dirty data (used by the periodical flusher, paper
    /// Algorithm 1). Returns the number of bytes written back.
    pub async fn flush_expired(&self) -> f64 {
        let flushed = {
            let now = self.ctx.now();
            let mut s = self.state.borrow_mut();
            let flushed = s.lru.flush_expired(now, self.config.dirty_expire);
            s.counters.flushed_background += flushed;
            flushed
        };
        if flushed > EPSILON {
            self.disk.write(flushed).await;
        }
        flushed
    }

    /// Records a memory sample into the trace and returns it.
    pub fn sample(&self) -> MemorySample {
        let now = self.ctx.now();
        let mut s = self.state.borrow_mut();
        let cached = s.lru.total_cached();
        let dirty = s.lru.total_dirty();
        let sample = MemorySample {
            time: now,
            total: self.config.total_memory,
            used: (cached + s.anonymous).min(self.config.total_memory),
            cached,
            dirty,
            anonymous: s.anonymous,
        };
        s.trace.push(sample.clone());
        sample
    }

    /// The memory profile collected so far (Fig. 4b).
    pub fn trace(&self) -> MemoryTrace {
        self.state.borrow().trace.clone()
    }

    /// Takes a labelled snapshot of the cache content per file (Fig. 4c).
    pub fn cache_content_snapshot(&self, label: impl Into<String>) -> CacheContentSnapshot {
        CacheContentSnapshot {
            label: label.into(),
            time: self.ctx.now().as_secs(),
            per_file: self.cached_per_file(),
        }
    }

    /// Spawns the background periodical flusher (paper Algorithm 1): an
    /// infinite loop that, every `flush_interval` seconds, writes back all
    /// expired dirty blocks. The process exits once [`MemoryManager::stop`] is
    /// called and the current interval elapses.
    pub fn spawn_periodical_flusher(&self) -> JoinHandle<()> {
        let mm = self.clone();
        self.ctx
            .clone()
            .spawn(async move { mm.run_periodical_flusher().await })
    }

    /// Body of the periodical flusher; exposed for tests that want to drive it
    /// directly.
    pub async fn run_periodical_flusher(&self) {
        loop {
            if self.state.borrow().stop_flusher {
                break;
            }
            let start = self.ctx.now();
            let flushed = self.flush_expired().await;
            {
                let mut s = self.state.borrow_mut();
                s.counters.flusher_runs += 1;
                let _ = flushed;
            }
            let elapsed = self.ctx.now().duration_since(start);
            if elapsed < self.config.flush_interval {
                self.ctx.sleep(self.config.flush_interval - elapsed).await;
            }
        }
    }

    /// Asks the periodical flusher to exit at its next wakeup (so that the
    /// simulation terminates once applications complete).
    pub fn stop(&self) {
        self.state.borrow_mut().stop_flusher = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use des::Simulation;
    use storage_model::{units::MB, DeviceSpec};

    const MEM_BW: f64 = 1000.0 * 1e6;
    const DISK_BW: f64 = 100.0 * 1e6;

    fn setup(total_memory: f64) -> (Simulation, MemoryManager) {
        let sim = Simulation::new();
        let ctx = sim.context();
        let memory = MemoryDevice::new(&ctx, DeviceSpec::symmetric(MEM_BW, 0.0, f64::INFINITY));
        let disk = Disk::new(
            &ctx,
            "disk0",
            DeviceSpec::symmetric(DISK_BW, 0.0, f64::INFINITY),
        );
        let mm = MemoryManager::new(
            &ctx,
            PageCacheConfig::with_memory(total_memory),
            memory,
            disk,
        );
        (sim, mm)
    }

    fn approx(a: f64, b: f64) {
        assert!(
            (a - b).abs() < 1e-6 * b.abs().max(1.0),
            "expected {b}, got {a}"
        );
    }

    #[test]
    fn memory_accounting() {
        let (_sim, mm) = setup(1000.0 * MB);
        assert_eq!(mm.free_memory(), 1000.0 * MB);
        mm.use_anonymous_memory(200.0 * MB);
        mm.add_to_cache(&"f".into(), 300.0 * MB);
        approx(mm.free_memory(), 500.0 * MB);
        approx(mm.available_memory(), 800.0 * MB);
        approx(mm.cached(), 300.0 * MB);
        approx(mm.anonymous(), 200.0 * MB);
        mm.release_anonymous_memory(500.0 * MB);
        approx(mm.anonymous(), 0.0);
        mm.check_invariants().unwrap();
    }

    #[test]
    fn dirty_headroom_follows_dirty_ratio() {
        let (sim, mm) = setup(1000.0 * MB);
        approx(mm.dirty_headroom(), 200.0 * MB);
        let h = sim.spawn({
            let mm = mm.clone();
            async move {
                mm.write_to_cache(&"f".into(), 150.0 * MB).await;
            }
        });
        sim.run();
        assert!(h.is_finished());
        approx(mm.dirty(), 150.0 * MB);
        approx(mm.dirty_headroom(), 50.0 * MB);
        mm.use_anonymous_memory(500.0 * MB);
        approx(mm.dirty_headroom(), 0.2 * 500.0 * MB - 150.0 * MB);
    }

    #[test]
    fn write_to_cache_takes_memory_write_time() {
        let (sim, mm) = setup(10_000.0 * MB);
        let h = sim.spawn({
            let mm = mm.clone();
            async move {
                mm.write_to_cache(&"f".into(), 1000.0 * MB).await;
            }
        });
        sim.run();
        assert!(h.is_finished());
        approx(sim.now().as_secs(), 1.0); // 1000 MB at 1000 MB/s
    }

    #[test]
    fn read_from_cache_promotes_and_costs_memory_time() {
        let (sim, mm) = setup(10_000.0 * MB);
        mm.add_to_cache(&"f".into(), 500.0 * MB);
        let h = sim.spawn({
            let mm = mm.clone();
            async move { mm.read_from_cache(&"f".into(), 500.0 * MB).await }
        });
        sim.run();
        approx(h.try_take_result().unwrap(), 500.0 * MB);
        approx(sim.now().as_secs(), 0.5);
        // Reading uncached data returns 0 bytes.
        let h2 = sim.spawn({
            let mm = mm.clone();
            async move { mm.read_from_cache(&"other".into(), 100.0 * MB).await }
        });
        sim.run();
        approx(h2.try_take_result().unwrap(), 0.0);
    }

    #[test]
    fn flush_writes_dirty_data_to_disk_and_takes_disk_time() {
        let (sim, mm) = setup(10_000.0 * MB);
        let h = sim.spawn({
            let mm = mm.clone();
            async move {
                mm.write_to_cache(&"f".into(), 500.0 * MB).await;
                let t0 = mm.ctx.now().as_secs();
                let flushed = mm.flush(500.0 * MB, None).await;
                (flushed, mm.ctx.now().as_secs() - t0)
            }
        });
        sim.run();
        let (flushed, elapsed) = h.try_take_result().unwrap();
        approx(flushed, 500.0 * MB);
        approx(elapsed, 5.0); // 500 MB at 100 MB/s
        approx(mm.dirty(), 0.0);
        approx(mm.cached(), 500.0 * MB); // data stays cached, now clean
        approx(mm.disk().total_bytes_written(), 500.0 * MB);
        approx(mm.counters().flushed_on_demand, 500.0 * MB);
    }

    #[test]
    fn flush_with_negative_amount_is_noop() {
        let (sim, mm) = setup(1000.0 * MB);
        let h = sim.spawn({
            let mm = mm.clone();
            async move {
                mm.write_to_cache(&"f".into(), 100.0 * MB).await;
                mm.flush(-50.0, None).await
            }
        });
        sim.run();
        approx(h.try_take_result().unwrap(), 0.0);
        approx(mm.dirty(), 100.0 * MB);
    }

    #[test]
    fn evict_frees_clean_cache_without_simulated_time() {
        let (sim, mm) = setup(1000.0 * MB);
        mm.add_to_cache(&"f".into(), 600.0 * MB);
        let evicted = mm.evict(250.0 * MB, None);
        approx(evicted, 250.0 * MB);
        approx(mm.cached(), 350.0 * MB);
        approx(mm.counters().evicted, 250.0 * MB);
        assert_eq!(sim.now().as_secs(), 0.0);
    }

    #[test]
    fn periodical_flusher_writes_back_expired_dirty_data() {
        let (sim, mm) = setup(10_000.0 * MB);
        mm.spawn_periodical_flusher();
        let mm2 = mm.clone();
        let ctx = sim.context();
        sim.spawn(async move {
            mm2.write_to_cache(&"f".into(), 200.0 * MB).await;
            // Wait until well past the expiration age plus one flush interval.
            ctx.sleep(40.0).await;
            assert!(mm2.dirty() < 1.0);
            approx(mm2.cached(), 200.0 * MB);
            mm2.stop();
        });
        sim.run();
        approx(mm.counters().flushed_background, 200.0 * MB);
        assert!(mm.counters().flusher_runs >= 7);
        approx(mm.disk().total_bytes_written(), 200.0 * MB);
    }

    #[test]
    fn periodical_flusher_does_not_touch_fresh_dirty_data() {
        let (sim, mm) = setup(10_000.0 * MB);
        mm.spawn_periodical_flusher();
        let mm2 = mm.clone();
        let ctx = sim.context();
        sim.spawn(async move {
            mm2.write_to_cache(&"f".into(), 200.0 * MB).await;
            ctx.sleep(10.0).await; // under the 30 s expiration age
            approx(mm2.dirty(), 200.0 * MB);
            mm2.stop();
        });
        sim.run();
        approx(mm.counters().flushed_background, 0.0);
    }

    #[test]
    fn sample_and_snapshot_capture_state() {
        let (sim, mm) = setup(1000.0 * MB);
        mm.use_anonymous_memory(100.0 * MB);
        mm.add_to_cache(&"f1".into(), 200.0 * MB);
        let h = sim.spawn({
            let mm = mm.clone();
            async move {
                mm.write_to_cache(&"f2".into(), 50.0 * MB).await;
                mm.sample()
            }
        });
        sim.run();
        let s = h.try_take_result().unwrap();
        approx(s.cached, 250.0 * MB);
        approx(s.dirty, 50.0 * MB);
        approx(s.used, 350.0 * MB);
        assert_eq!(mm.trace().len(), 1);
        let snap = mm.cache_content_snapshot("after");
        approx(snap.cached(&"f1".into()), 200.0 * MB);
        approx(snap.cached(&"f2".into()), 50.0 * MB);
        assert_eq!(snap.label, "after");
    }

    #[test]
    fn invalidate_file_removes_cache_entries() {
        let (_sim, mm) = setup(1000.0 * MB);
        mm.add_to_cache(&"f1".into(), 200.0 * MB);
        mm.add_to_cache(&"f2".into(), 100.0 * MB);
        let removed = mm.invalidate_file(&"f1".into());
        approx(removed, 200.0 * MB);
        approx(mm.cached(), 100.0 * MB);
    }

    #[test]
    fn enforce_group_limits_flushes_and_evicts_only_the_group() {
        let (sim, mm) = setup(10_000.0 * MB);
        mm.set_file_group(&"tenant".into(), Some(7));
        mm.add_to_cache(&"tenant".into(), 300.0 * MB);
        mm.add_to_cache(&"other".into(), 400.0 * MB);
        let h = sim.spawn({
            let mm = mm.clone();
            async move {
                mm.write_to_cache(&"tenant".into(), 200.0 * MB).await;
                // Group 7 holds 500 MB cached / 200 MB dirty. Cap it at
                // 250 MB cached and 50 MB dirty.
                mm.enforce_group_limits(7, 250.0 * MB, 50.0 * MB).await
            }
        });
        sim.run();
        let (evicted, flushed) = h.try_take_result().unwrap();
        approx(flushed, 150.0 * MB);
        approx(evicted, 250.0 * MB);
        approx(mm.group_cached(7), 250.0 * MB);
        approx(mm.group_dirty(7), 50.0 * MB);
        // The other file (no group) is untouched.
        approx(mm.cached_amount(&"other".into()), 400.0 * MB);
        approx(mm.cached(), 650.0 * MB);
        mm.check_invariants().unwrap();
    }

    #[test]
    fn crash_discard_reports_dirty_losses_and_empties_the_cache() {
        let (sim, mm) = setup(10_000.0 * MB);
        mm.add_to_cache(&"clean".into(), 300.0 * MB);
        mm.use_anonymous_memory(100.0 * MB);
        let h = sim.spawn({
            let mm = mm.clone();
            async move {
                mm.write_to_cache(&"dirty".into(), 200.0 * MB).await;
                mm.write_to_cache(&"mixed".into(), 50.0 * MB).await;
                // Flush "mixed" so only "dirty" still holds unstable data.
                mm.flush_file(&"mixed".into()).await;
                mm.crash_discard()
            }
        });
        sim.run();
        let lost = h.try_take_result().unwrap();
        assert_eq!(lost.len(), 1);
        assert_eq!(lost[0].0, "dirty".into());
        approx(lost[0].1, 200.0 * MB);
        // The entire cache (clean included) and anonymous memory are gone.
        approx(mm.cached(), 0.0);
        approx(mm.dirty(), 0.0);
        approx(mm.anonymous(), 0.0);
        mm.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "invalid page cache configuration")]
    fn invalid_config_is_rejected() {
        let sim = Simulation::new();
        let ctx = sim.context();
        let memory = MemoryDevice::new(&ctx, DeviceSpec::symmetric(MEM_BW, 0.0, f64::INFINITY));
        let disk = Disk::new(
            &ctx,
            "d",
            DeviceSpec::symmetric(DISK_BW, 0.0, f64::INFINITY),
        );
        let mut cfg = PageCacheConfig::with_memory(1000.0 * MB);
        cfg.dirty_ratio = 3.0;
        let _ = MemoryManager::new(&ctx, cfg, memory, disk);
    }
}
