//! Memory-state traces and per-operation statistics.
//!
//! The paper evaluates its model not only on simulated I/O times (Fig. 4a) but
//! also on the *memory profile* over time — used memory, cached data and dirty
//! data (Fig. 4b) — and on the cache content per file after each I/O operation
//! (Fig. 4c). These types collect exactly that information.

use std::collections::BTreeMap;

use des::SimTime;

use crate::block::FileId;

/// One point of the memory profile (Fig. 4b).
#[derive(Debug, Clone, PartialEq)]
pub struct MemorySample {
    /// Virtual time of the sample.
    pub time: SimTime,
    /// Total RAM of the host (constant; kept for convenient plotting).
    pub total: f64,
    /// Used memory: anonymous application memory plus page cache.
    pub used: f64,
    /// Page cache size (clean + dirty).
    pub cached: f64,
    /// Dirty page cache data.
    pub dirty: f64,
    /// Anonymous application memory.
    pub anonymous: f64,
}

/// The memory profile of a simulation run: a time series of [`MemorySample`]s.
#[derive(Debug, Default, Clone)]
pub struct MemoryTrace {
    samples: Vec<MemorySample>,
}

impl MemoryTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample.
    pub fn push(&mut self, sample: MemorySample) {
        self.samples.push(sample);
    }

    /// All samples in chronological order.
    pub fn samples(&self) -> &[MemorySample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Maximum observed dirty data, useful to verify the dirty-ratio
    /// invariant of the paper ("in all cases, dirty data remained under the
    /// dirty ratio").
    pub fn max_dirty(&self) -> f64 {
        self.samples.iter().map(|s| s.dirty).fold(0.0, f64::max)
    }

    /// Maximum observed cached data.
    pub fn max_cached(&self) -> f64 {
        self.samples.iter().map(|s| s.cached).fold(0.0, f64::max)
    }

    /// Maximum observed used memory.
    pub fn max_used(&self) -> f64 {
        self.samples.iter().map(|s| s.used).fold(0.0, f64::max)
    }

    /// Linearly interpolates the cached amount at an arbitrary time (for
    /// comparing traces sampled at different instants).
    pub fn cached_at(&self, time: SimTime) -> f64 {
        interpolate(&self.samples, time, |s| s.cached)
    }

    /// Linearly interpolates the dirty amount at an arbitrary time.
    pub fn dirty_at(&self, time: SimTime) -> f64 {
        interpolate(&self.samples, time, |s| s.dirty)
    }

    /// Linearly interpolates the used amount at an arbitrary time.
    pub fn used_at(&self, time: SimTime) -> f64 {
        interpolate(&self.samples, time, |s| s.used)
    }
}

fn interpolate(samples: &[MemorySample], time: SimTime, f: impl Fn(&MemorySample) -> f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    if time <= samples[0].time {
        return f(&samples[0]);
    }
    if time >= samples[samples.len() - 1].time {
        return f(&samples[samples.len() - 1]);
    }
    let idx = samples.partition_point(|s| s.time <= time);
    let (a, b) = (&samples[idx - 1], &samples[idx]);
    let span = b.time - a.time;
    if span <= 0.0 {
        return f(b);
    }
    let w = (time - a.time) / span;
    f(a) * (1.0 - w) + f(b) * w
}

/// Statistics of a single simulated file read or write (one call to the I/O
/// controller).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IoOpStats {
    /// Bytes that were served from disk.
    pub bytes_from_disk: f64,
    /// Bytes that were served from the page cache.
    pub bytes_from_cache: f64,
    /// Bytes written into the page cache.
    pub bytes_to_cache: f64,
    /// Bytes written to disk (synchronously, as part of this operation —
    /// flushes triggered by memory pressure count here, background flushes do
    /// not).
    pub bytes_to_disk: f64,
    /// Bytes read from disk *ahead of demand* by a readahead model (a subset
    /// of `bytes_from_disk`). Zero on back-ends without readahead.
    pub bytes_prefetched: f64,
    /// Seconds the caller spent blocked in dirty-page throttling
    /// (`balance_dirty_pages`-style synchronous threshold writeback and
    /// pacing stalls; a subset of `duration`).
    pub throttle_stall: f64,
    /// Virtual time the operation took, in seconds.
    pub duration: f64,
}

impl IoOpStats {
    /// Total bytes moved by the operation (disk + cache reads, or cache +
    /// disk writes).
    pub fn total_bytes(&self) -> f64 {
        self.bytes_from_disk + self.bytes_from_cache + self.bytes_to_cache
    }

    /// Fraction of a read served from the cache (0 when nothing was read).
    pub fn cache_hit_ratio(&self) -> f64 {
        let read = self.bytes_from_disk + self.bytes_from_cache;
        if read <= 0.0 {
            0.0
        } else {
            self.bytes_from_cache / read
        }
    }

    /// Merges the statistics of another operation into this one (summing
    /// bytes and durations).
    pub fn merge(&mut self, other: &IoOpStats) {
        self.bytes_from_disk += other.bytes_from_disk;
        self.bytes_from_cache += other.bytes_from_cache;
        self.bytes_to_cache += other.bytes_to_cache;
        self.bytes_to_disk += other.bytes_to_disk;
        self.bytes_prefetched += other.bytes_prefetched;
        self.throttle_stall += other.throttle_stall;
        self.duration += other.duration;
    }
}

/// Snapshot of the cache content per file at a given instant (Fig. 4c).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CacheContentSnapshot {
    /// Label of the instant (e.g. "Read 1", "Write 3").
    pub label: String,
    /// Virtual time of the snapshot.
    pub time: f64,
    /// Cached bytes per file.
    pub per_file: BTreeMap<FileId, f64>,
}

impl CacheContentSnapshot {
    /// Total cached bytes across all files.
    pub fn total(&self) -> f64 {
        self.per_file.values().sum()
    }

    /// Cached bytes of one file (0 if absent).
    pub fn cached(&self, file: &FileId) -> f64 {
        self.per_file.get(file).copied().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: f64, used: f64, cached: f64, dirty: f64) -> MemorySample {
        MemorySample {
            time: SimTime::from_secs(t),
            total: 1000.0,
            used,
            cached,
            dirty,
            anonymous: used - cached,
        }
    }

    #[test]
    fn trace_max_values() {
        let mut trace = MemoryTrace::new();
        trace.push(sample(0.0, 100.0, 50.0, 10.0));
        trace.push(sample(1.0, 400.0, 300.0, 60.0));
        trace.push(sample(2.0, 200.0, 150.0, 20.0));
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.max_used(), 400.0);
        assert_eq!(trace.max_cached(), 300.0);
        assert_eq!(trace.max_dirty(), 60.0);
    }

    #[test]
    fn trace_interpolation() {
        let mut trace = MemoryTrace::new();
        trace.push(sample(0.0, 0.0, 0.0, 0.0));
        trace.push(sample(10.0, 100.0, 50.0, 20.0));
        assert_eq!(trace.cached_at(SimTime::from_secs(5.0)), 25.0);
        assert_eq!(trace.dirty_at(SimTime::from_secs(5.0)), 10.0);
        assert_eq!(trace.used_at(SimTime::from_secs(0.0)), 0.0);
        // Clamped outside the sampled range.
        assert_eq!(trace.used_at(SimTime::from_secs(100.0)), 100.0);
        assert!(!trace.is_empty());
    }

    #[test]
    fn empty_trace_interpolates_to_zero() {
        let trace = MemoryTrace::new();
        assert_eq!(trace.cached_at(SimTime::from_secs(1.0)), 0.0);
        assert_eq!(trace.max_dirty(), 0.0);
    }

    #[test]
    fn op_stats_accessors_and_merge() {
        let mut a = IoOpStats {
            bytes_from_disk: 100.0,
            bytes_from_cache: 300.0,
            bytes_prefetched: 50.0,
            duration: 2.0,
            ..IoOpStats::default()
        };
        assert_eq!(a.cache_hit_ratio(), 0.75);
        assert_eq!(a.total_bytes(), 400.0);
        let b = IoOpStats {
            bytes_to_cache: 500.0,
            bytes_to_disk: 200.0,
            throttle_stall: 1.5,
            duration: 3.0,
            ..IoOpStats::default()
        };
        assert_eq!(b.cache_hit_ratio(), 0.0);
        a.merge(&b);
        assert_eq!(a.bytes_to_cache, 500.0);
        assert_eq!(a.bytes_to_disk, 200.0);
        assert_eq!(a.bytes_prefetched, 50.0);
        assert_eq!(a.throttle_stall, 1.5);
        assert_eq!(a.duration, 5.0);
    }

    #[test]
    fn cache_content_snapshot() {
        let mut per_file = BTreeMap::new();
        per_file.insert(FileId::new("f1"), 100.0);
        per_file.insert(FileId::new("f2"), 50.0);
        let snap = CacheContentSnapshot {
            label: "Read 1".to_string(),
            time: 3.0,
            per_file,
        };
        assert_eq!(snap.total(), 150.0);
        assert_eq!(snap.cached(&FileId::new("f1")), 100.0);
        assert_eq!(snap.cached(&FileId::new("missing")), 0.0);
    }
}
