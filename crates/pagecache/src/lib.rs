//! # `pagecache` — the Linux page cache simulation model
//!
//! This crate implements the core contribution of *"Modeling the Linux page
//! cache for accurate simulation of data-intensive applications"* (CLUSTER
//! 2021): a macroscopic simulation model of the Linux page cache suitable for
//! discrete-event simulation of data-intensive applications.
//!
//! The model has two components (paper Fig. 1):
//!
//! * the [`MemoryManager`], which owns the two [`LruLists`] of variable-size
//!   [`DataBlock`]s, performs flushing and eviction, and runs the background
//!   periodical flusher (Algorithm 1);
//! * the [`IoController`], which applications use to read and write files
//!   chunk by chunk (Algorithms 2 and 3), in writeback or writethrough mode.
//!
//! Device times (disk, memory bus) are simulated by the flow-level models of
//! the [`storage_model`] crate on top of the [`des`] engine, so concurrent
//! applications contend for bandwidth exactly as in the paper's SimGrid-based
//! implementation.
//!
//! ## Example: read a file twice and observe the cache hit
//!
//! ```
//! use des::Simulation;
//! use pagecache::{IoController, MemoryManager, PageCacheConfig};
//! use storage_model::{DeviceSpec, Disk, MemoryDevice, units::MB};
//!
//! let sim = Simulation::new();
//! let ctx = sim.context();
//! let memory = MemoryDevice::new(&ctx, DeviceSpec::symmetric(4812.0 * MB, 0.0, f64::INFINITY));
//! let disk = Disk::new(&ctx, "ssd", DeviceSpec::symmetric(465.0 * MB, 0.0, f64::INFINITY));
//! let mm = MemoryManager::new(&ctx, PageCacheConfig::with_memory(8_000.0 * MB), memory, disk);
//! let io = IoController::new(&ctx, mm);
//!
//! let handle = sim.spawn(async move {
//!     let cold = io.read_file(&"input".into(), 1_000.0 * MB).await;
//!     let warm = io.read_file(&"input".into(), 1_000.0 * MB).await;
//!     (cold.duration, warm.duration)
//! });
//! sim.run();
//! let (cold, warm) = handle.try_take_result().unwrap();
//! assert!(warm < cold / 5.0); // the second read is served from memory
//! ```

#![warn(missing_docs)]

mod block;
mod config;
mod controller;
mod lru;
mod manager;
pub mod policy;
mod stats;

pub use block::{DataBlock, FileId};
pub use config::{PageCacheConfig, WriteMode};
pub use controller::{clamp_io_range, IoController, DEFAULT_CHUNK_SIZE};
pub use lru::{ListKind, LruLists, EPSILON};
pub use manager::{MemoryManager, MemoryManagerCounters};
pub use policy::{EvictionPolicy, FileMeta, ReplacementPolicy, MAX_TIERS};
pub use stats::{CacheContentSnapshot, IoOpStats, MemorySample, MemoryTrace};
