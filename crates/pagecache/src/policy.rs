//! Pluggable eviction policies: the *decision* half of the page-cache
//! replacement machinery.
//!
//! PR 3's intrusive slab arena (`pagecache::lru`) and the kernel emulator's
//! file slab (`kernel-emu::cache`) are pure *mechanism*: chains, byte
//! aggregates, resident-range ledgers. Which block or file to admit where,
//! when to promote it, and in what order to reclaim it is *policy* — and
//! recent work ("Cache is King: Smart Page Eviction with eBPF", LearnedCache)
//! treats exactly that as the swappable component of a page cache. This
//! module factors the decisions behind one [`ReplacementPolicy`] trait so
//! both mechanisms can run any of four classic policies:
//!
//! | policy | literature / Linux counterpart |
//! |---|---|
//! | [`EvictionPolicy::TwoList`] | the kernel's classic active/inactive lists (the paper's model; default) |
//! | [`EvictionPolicy::Clock`] | CLOCK / second-chance reference bits |
//! | [`EvictionPolicy::TwoQ`] | 2Q (A1in / A1out ghosts / Am) |
//! | [`EvictionPolicy::MglruGen`] | MGLRU-style generation ring with aging |
//!
//! # The tier abstraction (block-granular mechanism)
//!
//! `pagecache::lru` keeps up to [`MAX_TIERS`] physical lists ("tiers"), each
//! an intrusive recency chain with incremental aggregates. The policy decides
//! everything tier-shaped:
//!
//! * [`ReplacementPolicy::insert_tier`] — where a first-touch block lands
//!   (2Q routes ghost-hit files straight to Am; MGLRU picks a middle
//!   generation, aging the ring lazily when the oldest generation drains);
//! * [`ReplacementPolicy::promote_tier`] — where a re-accessed block goes;
//! * [`ReplacementPolicy::tier_order`] — the reclaim-first scan order
//!   (MGLRU rotates it as generations age);
//! * [`ReplacementPolicy::evictable_tiers`] — which tiers eviction may
//!   reclaim from (the 2-list policy protects its active tier);
//! * [`ReplacementPolicy::demotion`] — the rebalance rule (the 2-list
//!   policy's "active at most twice the inactive" demotion loop);
//! * [`ReplacementPolicy::uses_reference_bits`] /
//!   [`ReplacementPolicy::on_evict`] — CLOCK's second chance and 2Q's ghost
//!   bookkeeping.
//!
//! # File-granular hooks (kernel emulator mechanism)
//!
//! The emulator tracks occupancy per *file*, so the same trait also carries
//! file-level hooks operating on a per-file [`FileMeta`] (reference bit, 2Q
//! hot flag, MGLRU generation stamp) stored by the mechanism:
//! [`ReplacementPolicy::file_admit`], [`ReplacementPolicy::file_touch`],
//! [`ReplacementPolicy::file_rank`] (a victim-ordering prefix — the
//! mechanism sorts candidates by `(rank, last_access, name)`),
//! [`ReplacementPolicy::file_second_chance`] and
//! [`ReplacementPolicy::file_on_evict`].
//!
//! The default [`EvictionPolicy::TwoList`] policy answers every hook exactly
//! the way the pre-trait hard-wired code behaved (insert inactive, promote
//! to active, 2× demotion rule, rank 0 everywhere), so the default
//! predictions are bit-identical to the historical ones — the frozen golden
//! baselines prove it.

use std::collections::VecDeque;
use std::fmt;
use std::str::FromStr;

use crate::block::FileId;
use crate::lru::EPSILON;

/// Maximum number of physical tiers (lists / generations) any policy uses.
pub const MAX_TIERS: usize = 4;

/// Capacity of the 2Q ghost FIFO (A1out), in distinct files.
const TWO_Q_GHOSTS: usize = 64;

/// How many file touches advance the MGLRU generation counter by one.
const MGLRU_AGE_PERIOD: u32 = 32;

/// The selectable eviction policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EvictionPolicy {
    /// The kernel's classic active/inactive 2-list policy (paper §III-A-1).
    /// The default; reproduces the pre-trait predictions bit-identically.
    #[default]
    TwoList,
    /// CLOCK: one list with second-chance reference bits.
    Clock,
    /// 2Q: a probationary FIFO (A1in), a ghost FIFO of recently evicted
    /// files (A1out) and a protected main list (Am).
    TwoQ,
    /// MGLRU-style generation ring: four generations aged lazily, oldest
    /// reclaimed first.
    MglruGen,
}

impl EvictionPolicy {
    /// All policies, in canonical (sweep/bench) order.
    pub const ALL: [EvictionPolicy; 4] = [
        EvictionPolicy::TwoList,
        EvictionPolicy::Clock,
        EvictionPolicy::TwoQ,
        EvictionPolicy::MglruGen,
    ];

    /// Canonical config-string name of the policy.
    pub fn as_str(&self) -> &'static str {
        match self {
            EvictionPolicy::TwoList => "two_list",
            EvictionPolicy::Clock => "clock",
            EvictionPolicy::TwoQ => "two_q",
            EvictionPolicy::MglruGen => "mglru",
        }
    }

    /// Instantiates the policy's decision state.
    pub fn build(self) -> Box<dyn ReplacementPolicy> {
        match self {
            EvictionPolicy::TwoList => Box::new(TwoListPolicy),
            EvictionPolicy::Clock => Box::new(ClockPolicy),
            EvictionPolicy::TwoQ => Box::new(TwoQPolicy::default()),
            EvictionPolicy::MglruGen => Box::new(MglruPolicy::default()),
        }
    }
}

impl fmt::Display for EvictionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for EvictionPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "two_list" | "twolist" | "2list" | "lru" => Ok(EvictionPolicy::TwoList),
            "clock" | "second_chance" => Ok(EvictionPolicy::Clock),
            "two_q" | "twoq" | "2q" => Ok(EvictionPolicy::TwoQ),
            "mglru" | "mglru_gen" | "gen" => Ok(EvictionPolicy::MglruGen),
            other => Err(format!(
                "unknown eviction policy {other:?} (expected two_list, clock, two_q or mglru)"
            )),
        }
    }
}

/// Per-file policy metadata stored by file-granular mechanisms (the kernel
/// emulator). The mechanism owns the storage; the policy owns the meaning.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FileMeta {
    /// CLOCK reference bit: the file was re-accessed while resident.
    pub referenced: bool,
    /// 2Q hot flag: the file re-entered the cache after a ghost hit, or was
    /// re-accessed while resident (Am membership).
    pub hot: bool,
    /// MGLRU generation stamp of the file's most recent access.
    pub gen: u32,
}

/// The decision half of a replacement scheme, consumed by both the
/// block-granular `pagecache::lru` mechanism (tier hooks) and the
/// file-granular `kernel-emu` mechanism (file hooks). See the module docs
/// for the contract of each hook.
pub trait ReplacementPolicy: fmt::Debug {
    /// The named policy this state implements.
    fn kind(&self) -> EvictionPolicy;

    // ---- Tier hooks (block-granular mechanism) ----

    /// Tier a newly inserted (first-touch) block joins. `tier_bytes` holds
    /// the current per-tier byte totals (MGLRU ages its ring off them; 2Q
    /// consults its ghost FIFO for `file`).
    fn insert_tier(&mut self, file: &FileId, tier_bytes: &[f64; MAX_TIERS]) -> usize;

    /// Tier a re-accessed block is re-inserted into.
    fn promote_tier(&mut self, file: &FileId, tier_bytes: &[f64; MAX_TIERS]) -> usize;

    /// The tier scan order for consumption, flushing and reclaim:
    /// least-protected (reclaim-first) tier first.
    fn tier_order(&self) -> [usize; MAX_TIERS];

    /// Which tiers eviction may reclaim clean blocks from. Static per
    /// policy; the mechanism caches it for its O(1) aggregate split.
    fn evictable_tiers(&self) -> [bool; MAX_TIERS];

    /// One rebalance step: `Some((from, to))` demotes the LRU block of tier
    /// `from` into tier `to`; `None` ends the rebalance loop. Called with
    /// the current per-tier byte totals and block counts.
    fn demotion(
        &self,
        tier_bytes: &[f64; MAX_TIERS],
        tier_lens: &[usize; MAX_TIERS],
    ) -> Option<(usize, usize)>;

    /// Whether re-accessed blocks carry a reference bit that grants them a
    /// second chance during eviction (CLOCK).
    fn uses_reference_bits(&self) -> bool {
        false
    }

    /// Eviction removed bytes of `file` from `tier` (whole block or split).
    /// 2Q records ghosts of files reclaimed from its probationary tier.
    fn on_evict(&mut self, _file: &FileId, _tier: usize) {}

    // ---- File hooks (file-granular mechanism) ----

    /// A file (re-)entered the cache: classify it. 2Q turns a ghost hit
    /// into a hot admission; MGLRU stamps the current generation.
    fn file_admit(&mut self, _file: &FileId, _meta: &mut FileMeta) {}

    /// A resident file was accessed again (a cache hit / `touch`).
    fn file_touch(&mut self, _file: &FileId, _meta: &mut FileMeta) {}

    /// Victim-ordering prefix: eviction sorts candidate files by
    /// `(rank, last_access, name)`, lowest rank first. Rank 0 for every
    /// file reproduces the historical pure-LRU order.
    fn file_rank(&self, _meta: &FileMeta) -> u32 {
        0
    }

    /// Whether this file gets a second chance this reclaim pass (CLOCK:
    /// clears the reference bit and returns `true` once).
    fn file_second_chance(&self, _meta: &mut FileMeta) -> bool {
        false
    }

    /// A file's pages were fully reclaimed (2Q ghost bookkeeping).
    fn file_on_evict(&mut self, _file: &FileId, _meta: &FileMeta) {}

    /// Clones the policy state behind the object.
    fn box_clone(&self) -> Box<dyn ReplacementPolicy>;
}

impl Clone for Box<dyn ReplacementPolicy> {
    fn clone(&self) -> Self {
        self.box_clone()
    }
}

const IDENTITY_ORDER: [usize; MAX_TIERS] = [0, 1, 2, 3];

/// The classic active/inactive 2-list policy. Tier 0 is the inactive list,
/// tier 1 the active list; tiers 2 and 3 stay empty. Every answer matches
/// the pre-trait hard-wired behaviour exactly.
#[derive(Debug, Clone, Copy, Default)]
pub struct TwoListPolicy;

impl ReplacementPolicy for TwoListPolicy {
    fn kind(&self) -> EvictionPolicy {
        EvictionPolicy::TwoList
    }

    fn insert_tier(&mut self, _file: &FileId, _tier_bytes: &[f64; MAX_TIERS]) -> usize {
        0
    }

    fn promote_tier(&mut self, _file: &FileId, _tier_bytes: &[f64; MAX_TIERS]) -> usize {
        1
    }

    fn tier_order(&self) -> [usize; MAX_TIERS] {
        IDENTITY_ORDER
    }

    fn evictable_tiers(&self) -> [bool; MAX_TIERS] {
        [true, false, false, false]
    }

    fn demotion(
        &self,
        tier_bytes: &[f64; MAX_TIERS],
        tier_lens: &[usize; MAX_TIERS],
    ) -> Option<(usize, usize)> {
        // The kernel keeps the active list at most twice the inactive list
        // (paper §III-A-1); identical comparison to the historical loop.
        if tier_lens[1] > 0 && tier_bytes[1] > 2.0 * tier_bytes[0] + EPSILON {
            Some((1, 0))
        } else {
            None
        }
    }

    fn box_clone(&self) -> Box<dyn ReplacementPolicy> {
        Box::new(*self)
    }
}

/// CLOCK / second chance: a single list whose re-accessed blocks carry a
/// reference bit. The reclaim scan clears the bit and spares the block once;
/// a second pass reclaims regardless, guaranteeing progress. File-granular:
/// a touched file survives the first reclaim pass once.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClockPolicy;

impl ReplacementPolicy for ClockPolicy {
    fn kind(&self) -> EvictionPolicy {
        EvictionPolicy::Clock
    }

    fn insert_tier(&mut self, _file: &FileId, _tier_bytes: &[f64; MAX_TIERS]) -> usize {
        0
    }

    fn promote_tier(&mut self, _file: &FileId, _tier_bytes: &[f64; MAX_TIERS]) -> usize {
        0
    }

    fn tier_order(&self) -> [usize; MAX_TIERS] {
        IDENTITY_ORDER
    }

    fn evictable_tiers(&self) -> [bool; MAX_TIERS] {
        [true, false, false, false]
    }

    fn demotion(
        &self,
        _tier_bytes: &[f64; MAX_TIERS],
        _tier_lens: &[usize; MAX_TIERS],
    ) -> Option<(usize, usize)> {
        None
    }

    fn uses_reference_bits(&self) -> bool {
        true
    }

    fn file_touch(&mut self, _file: &FileId, meta: &mut FileMeta) {
        meta.referenced = true;
    }

    fn file_second_chance(&self, meta: &mut FileMeta) -> bool {
        if meta.referenced {
            meta.referenced = false;
            true
        } else {
            false
        }
    }

    fn box_clone(&self) -> Box<dyn ReplacementPolicy> {
        Box::new(*self)
    }
}

/// 2Q: tier 0 is the probationary A1in FIFO, tier 1 the protected main list
/// Am, and `ghosts` the A1out FIFO remembering recently reclaimed
/// probationary files. A first-touch block of a ghost file is admitted
/// straight to Am; reclaim drains A1in before touching Am.
#[derive(Debug, Clone)]
pub struct TwoQPolicy {
    ghosts: VecDeque<FileId>,
    capacity: usize,
}

impl Default for TwoQPolicy {
    fn default() -> Self {
        TwoQPolicy {
            ghosts: VecDeque::new(),
            capacity: TWO_Q_GHOSTS,
        }
    }
}

impl TwoQPolicy {
    fn ghost_hit(&mut self, file: &FileId) -> bool {
        if let Some(pos) = self.ghosts.iter().position(|g| g == file) {
            self.ghosts.remove(pos);
            true
        } else {
            false
        }
    }

    fn remember(&mut self, file: &FileId) {
        if self.ghosts.iter().any(|g| g == file) {
            return;
        }
        self.ghosts.push_back(file.clone());
        while self.ghosts.len() > self.capacity {
            self.ghosts.pop_front();
        }
    }
}

impl ReplacementPolicy for TwoQPolicy {
    fn kind(&self) -> EvictionPolicy {
        EvictionPolicy::TwoQ
    }

    fn insert_tier(&mut self, file: &FileId, _tier_bytes: &[f64; MAX_TIERS]) -> usize {
        if self.ghost_hit(file) {
            1 // A1out hit: the file earned the main list.
        } else {
            0 // Cold first touch: probationary A1in.
        }
    }

    fn promote_tier(&mut self, _file: &FileId, _tier_bytes: &[f64; MAX_TIERS]) -> usize {
        1
    }

    fn tier_order(&self) -> [usize; MAX_TIERS] {
        IDENTITY_ORDER
    }

    fn evictable_tiers(&self) -> [bool; MAX_TIERS] {
        // Both queues are reclaimable; the scan order drains A1in first.
        [true, true, false, false]
    }

    fn demotion(
        &self,
        _tier_bytes: &[f64; MAX_TIERS],
        _tier_lens: &[usize; MAX_TIERS],
    ) -> Option<(usize, usize)> {
        None
    }

    fn on_evict(&mut self, file: &FileId, tier: usize) {
        if tier == 0 {
            self.remember(file);
        }
    }

    fn file_admit(&mut self, file: &FileId, meta: &mut FileMeta) {
        if self.ghost_hit(file) {
            meta.hot = true;
        }
    }

    fn file_touch(&mut self, _file: &FileId, meta: &mut FileMeta) {
        meta.hot = true;
    }

    fn file_rank(&self, meta: &FileMeta) -> u32 {
        // Cold (A1in) files are reclaimed entirely before any hot (Am) file.
        meta.hot as u32
    }

    fn file_on_evict(&mut self, file: &FileId, meta: &FileMeta) {
        if !meta.hot {
            self.remember(file);
        }
    }

    fn box_clone(&self) -> Box<dyn ReplacementPolicy> {
        Box::new(self.clone())
    }
}

/// MGLRU-style generations: the four tiers form a ring of generations,
/// `oldest` pointing at the reclaim-first one. Inserts land two generations
/// above the oldest, promotions in the youngest; when the oldest generation
/// drains, the ring rotates (lazy aging) and the drained list becomes the
/// new youngest. File-granular: each file carries the generation stamp of
/// its last access, and reclaim evicts older generations first.
#[derive(Debug, Clone, Copy, Default)]
pub struct MglruPolicy {
    oldest: usize,
    current_gen: u32,
    touches: u32,
}

impl MglruPolicy {
    /// Rotates the ring past drained leading generations (at most a full
    /// cycle), so reclaim-first always points at data when any exists.
    fn age(&mut self, tier_bytes: &[f64; MAX_TIERS]) {
        for _ in 0..MAX_TIERS - 1 {
            if tier_bytes[self.oldest] > EPSILON {
                break;
            }
            if tier_bytes.iter().all(|&b| b <= EPSILON) {
                break;
            }
            self.oldest = (self.oldest + 1) % MAX_TIERS;
        }
    }

    /// Stamps one file access, advancing the generation counter every
    /// [`MGLRU_AGE_PERIOD`] accesses.
    fn stamp(&mut self) -> u32 {
        self.touches = self.touches.wrapping_add(1);
        if self.touches.is_multiple_of(MGLRU_AGE_PERIOD) {
            self.current_gen = self.current_gen.saturating_add(1);
        }
        self.current_gen
    }
}

impl ReplacementPolicy for MglruPolicy {
    fn kind(&self) -> EvictionPolicy {
        EvictionPolicy::MglruGen
    }

    fn insert_tier(&mut self, _file: &FileId, tier_bytes: &[f64; MAX_TIERS]) -> usize {
        self.age(tier_bytes);
        (self.oldest + 2) % MAX_TIERS
    }

    fn promote_tier(&mut self, _file: &FileId, tier_bytes: &[f64; MAX_TIERS]) -> usize {
        self.age(tier_bytes);
        (self.oldest + 3) % MAX_TIERS
    }

    fn tier_order(&self) -> [usize; MAX_TIERS] {
        [
            self.oldest,
            (self.oldest + 1) % MAX_TIERS,
            (self.oldest + 2) % MAX_TIERS,
            (self.oldest + 3) % MAX_TIERS,
        ]
    }

    fn evictable_tiers(&self) -> [bool; MAX_TIERS] {
        [true; MAX_TIERS]
    }

    fn demotion(
        &self,
        _tier_bytes: &[f64; MAX_TIERS],
        _tier_lens: &[usize; MAX_TIERS],
    ) -> Option<(usize, usize)> {
        None
    }

    fn file_admit(&mut self, _file: &FileId, meta: &mut FileMeta) {
        meta.gen = self.stamp();
    }

    fn file_touch(&mut self, _file: &FileId, meta: &mut FileMeta) {
        meta.gen = self.stamp();
    }

    fn file_rank(&self, meta: &FileMeta) -> u32 {
        // Older generation stamps are reclaimed first.
        meta.gen
    }

    fn box_clone(&self) -> Box<dyn ReplacementPolicy> {
        Box::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_names_round_trip() {
        for p in EvictionPolicy::ALL {
            assert_eq!(p.as_str().parse::<EvictionPolicy>().unwrap(), p);
            assert_eq!(p.to_string(), p.as_str());
        }
        assert_eq!(
            "2q".parse::<EvictionPolicy>().unwrap(),
            EvictionPolicy::TwoQ
        );
        assert!("nonsense".parse::<EvictionPolicy>().is_err());
        assert_eq!(EvictionPolicy::default(), EvictionPolicy::TwoList);
    }

    #[test]
    fn two_list_reproduces_historical_answers() {
        let mut p = EvictionPolicy::TwoList.build();
        let zero = [0.0; MAX_TIERS];
        assert_eq!(p.insert_tier(&"f".into(), &zero), 0);
        assert_eq!(p.promote_tier(&"f".into(), &zero), 1);
        assert_eq!(p.evictable_tiers(), [true, false, false, false]);
        assert!(!p.uses_reference_bits());
        // The 2x demotion rule, byte for byte.
        assert_eq!(
            p.demotion(&[10.0, 21.0, 0.0, 0.0], &[1, 1, 0, 0]),
            Some((1, 0))
        );
        assert_eq!(p.demotion(&[10.0, 20.0, 0.0, 0.0], &[1, 1, 0, 0]), None);
        assert_eq!(p.demotion(&[0.0, 100.0, 0.0, 0.0], &[0, 0, 0, 0]), None);
        assert_eq!(p.file_rank(&FileMeta::default()), 0);
    }

    #[test]
    fn two_q_ghost_routes_to_main_list() {
        let mut p = TwoQPolicy::default();
        let zero = [0.0; MAX_TIERS];
        let f: FileId = "f".into();
        assert_eq!(p.insert_tier(&f, &zero), 0);
        p.on_evict(&f, 0);
        // The ghost hit consumes the ghost entry.
        assert_eq!(p.insert_tier(&f, &zero), 1);
        assert_eq!(p.insert_tier(&f, &zero), 0);
        // Evictions from Am leave no ghost.
        p.on_evict(&f, 1);
        assert_eq!(p.insert_tier(&f, &zero), 0);
    }

    #[test]
    fn two_q_ghost_fifo_is_bounded() {
        let mut p = TwoQPolicy::default();
        for i in 0..2 * TWO_Q_GHOSTS {
            p.on_evict(&FileId::new(format!("f{i}")), 0);
        }
        assert_eq!(p.ghosts.len(), TWO_Q_GHOSTS);
        // The oldest half was forgotten.
        let zero = [0.0; MAX_TIERS];
        assert_eq!(p.insert_tier(&"f0".into(), &zero), 0);
        assert_eq!(
            p.insert_tier(&FileId::new(format!("f{}", 2 * TWO_Q_GHOSTS - 1)), &zero),
            1
        );
    }

    #[test]
    fn clock_second_chance_clears_the_bit() {
        let mut p = ClockPolicy;
        let mut meta = FileMeta::default();
        assert!(!p.file_second_chance(&mut meta));
        p.file_touch(&"f".into(), &mut meta);
        assert!(meta.referenced);
        assert!(p.file_second_chance(&mut meta));
        assert!(!meta.referenced);
        assert!(!p.file_second_chance(&mut meta));
    }

    #[test]
    fn mglru_ring_rotates_when_oldest_drains() {
        let mut p = MglruPolicy::default();
        assert_eq!(p.tier_order(), [0, 1, 2, 3]);
        // Data only in tier 2 (the insert gen): the ring ages until the
        // oldest generation points at it.
        let bytes = [0.0, 0.0, 10.0, 0.0];
        assert_eq!(p.insert_tier(&"f".into(), &bytes), (2 + 2) % 4);
        assert_eq!(p.tier_order(), [2, 3, 0, 1]);
        // An empty cache does not spin the ring.
        let mut fresh = MglruPolicy::default();
        fresh.age(&[0.0; MAX_TIERS]);
        assert_eq!(fresh.oldest, 0);
    }

    #[test]
    fn mglru_generation_counter_advances() {
        let mut p = MglruPolicy::default();
        let mut meta = FileMeta::default();
        for _ in 0..MGLRU_AGE_PERIOD {
            p.file_touch(&"f".into(), &mut meta);
        }
        assert_eq!(meta.gen, 1);
        assert_eq!(p.file_rank(&meta), 1);
    }
}
