//! The LRU list structure used by the simulation model (paper §III-A-1),
//! built on a slab arena of [`DataBlock`] nodes threaded by intrusive
//! doubly-linked chains (Linux `list_head`-style).
//!
//! # Mechanism vs. policy
//!
//! This module is pure *mechanism*: up to [`MAX_TIERS`] lists ("tiers") of
//! blocks, each ordered by last access time (earliest first, so the least
//! recently used data is always at the front), with O(1) incremental byte
//! aggregates and O(1) intrusive re-linking. Which tier a block joins on
//! first touch, where a re-accessed block is promoted, which tiers eviction
//! may reclaim from and in what order, and when blocks demote between tiers
//! are all *policy* decisions, delegated to a [`ReplacementPolicy`]
//! (see [`crate::policy`]).
//!
//! Under the default [`EvictionPolicy::TwoList`] policy this reproduces the
//! kernel behaviour the paper models bit-for-bit: tier 0 is the *inactive*
//! list (accessed once), tier 1 the *active* list (accessed more than once),
//! and the active list is kept at most twice the size of the inactive list
//! by demoting its least recently used blocks. The other policies reuse the
//! same chains and aggregates with different decisions: CLOCK keeps one tier
//! plus per-block reference bits (honoured by [`LruLists::evict`]'s
//! second-chance pass), 2Q splits tier 0/1 into A1in/Am with a ghost FIFO,
//! and MGLRU treats all four tiers as a rotating generation ring.
//!
//! # Why intrusive chains
//!
//! The previous implementation stored each list in a `VecDeque<DataBlock>`.
//! That made the byte *aggregates* O(1) (incremental counters, PR 1) but left
//! the list *operations* linear: reading one file's cached data walked every
//! block of every file, each `VecDeque::remove`/`insert` shifted O(n)
//! elements, and flushing scanned past clean blocks hunting for dirty
//! candidates. Interleaved multi-file workloads (`nfs_cluster`,
//! `concurrent_instances`) therefore degraded toward O(n²).
//!
//! Here every block lives in one slab **arena** slot and carries three pairs
//! of intrusive links, so its neighbors in every dimension are reachable in
//! O(1):
//!
//! * the **recency chain** of its list (inactive or active) — the classic LRU
//!   order, earliest `last_access` first;
//! * the **per-file chain** of its `(file, list)` pair — the same recency
//!   order restricted to one file's blocks;
//! * the **dirty chain** of its list — the same recency order restricted to
//!   dirty blocks (a block is linked here exactly while `dirty` is true).
//!
//! Every chain is a subsequence of its list's recency chain, so traversing a
//! per-file or dirty chain visits exactly the blocks a full scan would have
//! selected, in the same order — behaviour is preserved, only the skipped
//! work disappears.
//!
//! # Complexity
//!
//! | operation | `VecDeque` lists | arena + chains |
//! |---|---|---|
//! | `add_clean` / `add_dirty` | O(1) append | O(1) append |
//! | `read_cached` (file with k blocks) | O(n) scan + O(n) shifts | O(k) |
//! | `flush_lru` (d dirty blocks touched) | O(n) scan | O(d) |
//! | `evict` (e blocks removed) | O(n) shifts | O(e + skipped) |
//! | `flush_expired` (d dirty blocks) | O(n) scan | O(d) |
//! | `invalidate_file` (k blocks) | O(n) scan | O(k) |
//! | `balance` (per demotion) | O(1) decide + O(n) shift | O(1) decide + O(g) walk |
//! | byte aggregates | O(1) | O(1) |
//!
//! where g is the number of inactive blocks more recent than the demoted
//! block (0 in the common append-ordered case, and bounded by min(g, n−g)
//! in general: out-of-order insertions walk the recency chain from both
//! ends alternately instead of binary-searching, which keeps the common
//! monotonic-time append O(1), caps the demotion walk at the nearer end,
//! and never shifts elements).
//!
//! To bound arena growth on flush-heavy workloads, recency-adjacent blocks
//! of the same file on an **evictable** tier that are both clean, *share
//! the same last access time* and carry the same reference bit are coalesced
//! opportunistically (after an insert, a demotion, or a flush that turns a
//! block clean) — this is the shape a partial flush produces: a clean split
//! head next to its remainder, fragment after fragment at one timestamp.
//! Equal timestamps make the merge provably order-neutral (no later
//! out-of-order insertion can land between the merged bytes), so every
//! byte-level observable — aggregates, flush/evict/read amounts, eviction
//! order — is unchanged; only the block granularity coarsens. Blocks on
//! policy-protected tiers (the 2-list active list) are never coalesced
//! because [`LruLists::balance`] demotes whole blocks, and merging would
//! coarsen the demotion granularity (a behaviour change).
//!
//! # Invariants
//!
//! * Structure: every chain is doubly linked and consistent with its
//!   head/tail; the dirty and per-file chains are exactly the recency chain
//!   filtered by dirtiness / file; recency chains are sorted by
//!   `last_access`.
//! * Aggregates: for each tier, `agg.bytes` / `agg.dirty` equal the sum of
//!   sizes / dirty sizes of its blocks; for each file, `FileBytes { cached,
//!   dirty, inactive_bytes, inactive_clean, blocks }` equal the same sums
//!   restricted to that file (`inactive_*` counting the policy's evictable
//!   tiers, and `blocks` its exact block count, used to drop empty entries).
//!
//! In debug builds every public mutator re-derives all counters from a full
//! scan (the `recompute_*` oracles), validates the chain structure, and
//! `debug_assert!`s agreement, so the O(1) readers and O(k) walks can never
//! silently drift from the scan-based truth.
//!
//! All byte amounts are `f64`; a small epsilon absorbs floating-point dust
//! when blocks are split by partial reads, flushes and evictions.

use std::collections::{BTreeMap, HashMap};

use des::SimTime;

use crate::block::{DataBlock, FileId};
use crate::policy::{EvictionPolicy, ReplacementPolicy, MAX_TIERS};

/// Bytes below which two amounts are considered equal.
pub const EPSILON: f64 = 1e-6;

/// Index of a node in the arena. `NIL` marks the end of a chain.
type Idx = u32;
const NIL: Idx = u32::MAX;

/// The three intrusive link dimensions of a node.
const RECENCY: usize = 0;
const FILE: usize = 1;
const DIRTY: usize = 2;

/// The two classic LRU lists of the default 2-list policy, kept for API
/// compatibility. Internally blocks live on numbered tiers; under
/// [`EvictionPolicy::TwoList`] tier 0 is [`ListKind::Inactive`] and tier 1
/// [`ListKind::Active`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ListKind {
    /// The inactive list (data accessed once, candidates for eviction).
    Inactive,
    /// The active list (data accessed more than once, protected).
    Active,
}

/// One prev/next pair of an intrusive chain.
#[derive(Debug, Clone, Copy)]
struct Link {
    prev: Idx,
    next: Idx,
}

const UNLINKED: Link = Link {
    prev: NIL,
    next: NIL,
};

/// Endpoints of one intrusive chain.
#[derive(Debug, Clone, Copy)]
struct Chain {
    head: Idx,
    tail: Idx,
}

impl Default for Chain {
    fn default() -> Self {
        Chain {
            head: NIL,
            tail: NIL,
        }
    }
}

impl Chain {
    fn is_empty(&self) -> bool {
        self.head == NIL
    }
}

/// One arena slot: either a live block node or a free-list entry.
#[derive(Debug, Clone)]
enum Slot {
    Occupied(Node),
    Vacant { next_free: Idx },
}

/// A cached data block plus its intrusive links.
#[derive(Debug, Clone)]
struct Node {
    block: DataBlock,
    /// The tier (list) this block resides on.
    tier: usize,
    /// CLOCK reference bit: set when the block was re-accessed, granting it
    /// a second chance during eviction under policies that use it.
    referenced: bool,
    /// Links indexed by [`RECENCY`], [`FILE`], [`DIRTY`].
    links: [Link; 3],
}

fn node_ref(arena: &[Slot], i: Idx) -> &Node {
    match &arena[i as usize] {
        Slot::Occupied(n) => n,
        Slot::Vacant { .. } => panic!("chain references vacant arena slot {i}"),
    }
}

fn node_mut(arena: &mut [Slot], i: Idx) -> &mut Node {
    match &mut arena[i as usize] {
        Slot::Occupied(n) => n,
        Slot::Vacant { .. } => panic!("chain references vacant arena slot {i}"),
    }
}

/// Unlinks node `i` from `chain` along link dimension `lk`.
fn unlink(arena: &mut [Slot], chain: &mut Chain, lk: usize, i: Idx) {
    let Link { prev, next } = node_ref(arena, i).links[lk];
    if prev != NIL {
        node_mut(arena, prev).links[lk].next = next;
    } else {
        chain.head = next;
    }
    if next != NIL {
        node_mut(arena, next).links[lk].prev = prev;
    } else {
        chain.tail = prev;
    }
    node_mut(arena, i).links[lk] = UNLINKED;
}

/// Inserts node `i` into `chain` directly before `anchor` (at the tail when
/// `anchor` is `NIL`).
fn insert_before(arena: &mut [Slot], chain: &mut Chain, lk: usize, anchor: Idx, i: Idx) {
    if anchor == NIL {
        let old_tail = chain.tail;
        node_mut(arena, i).links[lk] = Link {
            prev: old_tail,
            next: NIL,
        };
        if old_tail != NIL {
            node_mut(arena, old_tail).links[lk].next = i;
        } else {
            chain.head = i;
        }
        chain.tail = i;
    } else {
        let prev = node_ref(arena, anchor).links[lk].prev;
        node_mut(arena, i).links[lk] = Link { prev, next: anchor };
        node_mut(arena, anchor).links[lk].prev = i;
        if prev != NIL {
            node_mut(arena, prev).links[lk].next = i;
        } else {
            chain.head = i;
        }
    }
}

/// Inserts node `i` keeping `chain` sorted by `last_access`, after any
/// existing nodes with the same timestamp (the same tie rule as
/// `partition_point` in the `VecDeque` implementation). O(1) for the common
/// append case (monotonic simulated time); an out-of-order insert (a
/// demotion) walks from *both* ends alternately, so it costs O(min(g, n−g))
/// where g is the number of newer nodes — never a full-list walk, and no
/// element shifts, ever.
fn insert_sorted(arena: &mut [Slot], chain: &mut Chain, lk: usize, i: Idx) {
    let la = node_ref(arena, i).block.last_access;
    if chain.tail == NIL || node_ref(arena, chain.tail).block.last_access <= la {
        insert_before(arena, chain, lk, NIL, i);
        return;
    }
    // The sorted position is before the first node with a later timestamp;
    // both cursors converge on that boundary, whichever side is closer wins.
    let mut back = chain.tail; // invariant: back's timestamp > la
    let mut front = chain.head;
    loop {
        let prev = node_ref(arena, back).links[lk].prev;
        if prev == NIL || node_ref(arena, prev).block.last_access <= la {
            insert_before(arena, chain, lk, back, i);
            return;
        }
        back = prev;
        if node_ref(arena, front).block.last_access > la {
            insert_before(arena, chain, lk, front, i);
            return;
        }
        front = node_ref(arena, front).links[lk].next;
    }
}

/// Incrementally maintained byte totals of one list.
#[derive(Debug, Default, Clone, Copy)]
struct ListAgg {
    /// Sum of the sizes of all blocks on the list.
    bytes: f64,
    /// Sum of the sizes of the dirty blocks on the list.
    dirty: f64,
}

impl ListAgg {
    fn add(&mut self, size: f64, dirty: bool) {
        self.bytes += size;
        if dirty {
            self.dirty += size;
        }
    }

    fn sub(&mut self, size: f64, dirty: bool) {
        self.bytes = (self.bytes - size).max(0.0);
        if dirty {
            self.dirty = (self.dirty - size).max(0.0);
        }
    }
}

/// Incrementally maintained byte totals of one cache group (tenant). Memcg
/// analogue: the per-cgroup page counters the kernel keeps next to the
/// global LRU accounting.
#[derive(Debug, Default, Clone, Copy)]
struct GroupBytes {
    /// Cached bytes of the group's files (all tiers, clean + dirty).
    cached: f64,
    /// Dirty bytes of the group's files (all tiers).
    dirty: f64,
}

/// Incrementally maintained byte totals of one file.
#[derive(Debug, Default, Clone, Copy)]
struct FileBytes {
    /// Cached bytes of the file (all tiers, clean + dirty).
    cached: f64,
    /// Dirty bytes of the file (all tiers).
    dirty: f64,
    /// Bytes of the file on the policy's evictable tiers (clean + dirty);
    /// the inactive list under the default 2-list policy.
    inactive_bytes: f64,
    /// Clean bytes of the file on the evictable tiers (its evictable share).
    inactive_clean: f64,
    /// Exact number of blocks of the file across all tiers. Used to decide
    /// when the entry can be dropped without relying on float comparisons.
    blocks: usize,
}

/// Per-tier state: the recency and dirty chains plus the byte aggregates.
#[derive(Debug, Default, Clone)]
struct ListState {
    recency: Chain,
    dirty: Chain,
    len: usize,
    agg: ListAgg,
}

/// Per-file state: the byte aggregates plus one per-tier file chain.
#[derive(Debug, Default, Clone)]
struct FileState {
    bytes: FileBytes,
    /// File chains indexed by tier: this file's blocks on each tier, in
    /// recency order.
    chains: [Chain; MAX_TIERS],
}

/// The LRU lists (tiers) holding all cached data blocks of one host; the
/// tier decisions are delegated to the configured [`ReplacementPolicy`].
#[derive(Debug, Clone)]
pub struct LruLists {
    arena: Vec<Slot>,
    free_head: Idx,
    /// Indexed by tier; under the default 2-list policy tier 0 is the
    /// inactive list and tier 1 the active list.
    lists: [ListState; MAX_TIERS],
    per_file: HashMap<FileId, FileState>,
    /// Cache-group (tenant) assignment per file. Files without an entry
    /// belong to no group; the assignment survives full eviction of the
    /// file (it is configuration, not cache state).
    group_of: HashMap<FileId, u32>,
    /// Per-group byte aggregates, mirrored at the same four accounting
    /// choke points as the per-file counters (`agg_insert`, `agg_remove`,
    /// `agg_clean_in_place`, `agg_shrink`), so memcg-style limits are O(1)
    /// to poll.
    group_bytes: HashMap<u32, GroupBytes>,
    policy: Box<dyn ReplacementPolicy>,
    /// Cached [`ReplacementPolicy::evictable_tiers`] answer, so the hot
    /// aggregate paths never touch the policy object.
    evictable_mask: [bool; MAX_TIERS],
}

impl Default for LruLists {
    fn default() -> Self {
        Self::with_policy(EvictionPolicy::default())
    }
}

impl LruLists {
    /// Creates an empty cache under the default 2-list policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty cache under the given eviction policy.
    pub fn with_policy(policy: EvictionPolicy) -> Self {
        let policy = policy.build();
        let evictable_mask = policy.evictable_tiers();
        LruLists {
            arena: Vec::new(),
            free_head: NIL,
            lists: std::array::from_fn(|_| ListState::default()),
            per_file: HashMap::new(),
            group_of: HashMap::new(),
            group_bytes: HashMap::new(),
            policy,
            evictable_mask,
        }
    }

    /// The eviction policy this cache runs under.
    pub fn policy_kind(&self) -> EvictionPolicy {
        self.policy.kind()
    }

    /// Total number of blocks across all tiers.
    pub fn block_count(&self) -> usize {
        self.lists.iter().map(|l| l.len).sum()
    }

    /// Whether the cache holds no data at all.
    pub fn is_empty(&self) -> bool {
        self.block_count() == 0
    }

    /// Per-tier byte totals, the policy's decision input. O(1).
    fn tier_bytes(&self) -> [f64; MAX_TIERS] {
        std::array::from_fn(|t| self.lists[t].agg.bytes)
    }

    /// Per-tier block counts, the policy's decision input. O(1).
    fn tier_lens(&self) -> [usize; MAX_TIERS] {
        std::array::from_fn(|t| self.lists[t].len)
    }

    /// Total cached bytes (clean + dirty, all tiers). O(1).
    pub fn total_cached(&self) -> f64 {
        self.lists.iter().map(|l| l.agg.bytes).sum()
    }

    /// Total dirty bytes (all tiers). O(1).
    pub fn total_dirty(&self) -> f64 {
        self.lists.iter().map(|l| l.agg.dirty).sum()
    }

    /// Bytes on the policy's evictable tiers (the inactive list under the
    /// default 2-list policy). O(1).
    pub fn inactive_bytes(&self) -> f64 {
        (0..MAX_TIERS)
            .filter(|&t| self.evictable_mask[t])
            .map(|t| self.lists[t].agg.bytes)
            .sum()
    }

    /// Bytes on the policy's protected tiers (the active list under the
    /// default 2-list policy). O(1).
    pub fn active_bytes(&self) -> f64 {
        (0..MAX_TIERS)
            .filter(|&t| !self.evictable_mask[t])
            .map(|t| self.lists[t].agg.bytes)
            .sum()
    }

    /// Cached bytes belonging to `file`. O(1) expected.
    pub fn cached_amount(&self, file: &FileId) -> f64 {
        self.per_file.get(file).map_or(0.0, |f| f.bytes.cached)
    }

    /// Dirty bytes belonging to `file`. O(1) expected.
    pub fn dirty_amount(&self, file: &FileId) -> f64 {
        self.per_file.get(file).map_or(0.0, |f| f.bytes.dirty)
    }

    /// Cached bytes per file (used to reproduce Fig. 4c). O(F log F) in the
    /// number of files, independent of the number of blocks; the returned keys
    /// share the interned file names (cloning a [`FileId`] is a refcount
    /// bump, not a string copy).
    pub fn cached_per_file(&self) -> BTreeMap<FileId, f64> {
        self.per_file
            .iter()
            .filter(|(_, f)| f.bytes.cached > EPSILON)
            .map(|(k, f)| (k.clone(), f.bytes.cached))
            .collect()
    }

    /// Iterates over the per-file cached amounts without cloning any key.
    /// Iteration order is unspecified; use [`LruLists::cached_per_file`] for a
    /// sorted snapshot.
    pub fn per_file_cached(&self) -> impl Iterator<Item = (&FileId, f64)> {
        self.per_file
            .iter()
            .filter(|(_, f)| f.bytes.cached > EPSILON)
            .map(|(k, f)| (k, f.bytes.cached))
    }

    /// Clean bytes on the evictable tiers that [`LruLists::evict`] could
    /// remove, optionally excluding one file. O(1).
    pub fn evictable(&self, exclude: Option<&FileId>) -> f64 {
        let total: f64 = (0..MAX_TIERS)
            .filter(|&t| self.evictable_mask[t])
            .map(|t| (self.lists[t].agg.bytes - self.lists[t].agg.dirty).max(0.0))
            .sum();
        let excluded = exclude
            .and_then(|f| self.per_file.get(f))
            .map_or(0.0, |f| f.bytes.inactive_clean);
        (total - excluded).max(0.0)
    }

    /// Assigns `file` to cache group `group` (memcg-style tenant), or clears
    /// the assignment with `None`. Any bytes of the file already cached move
    /// between the group aggregates, so assignment order relative to I/O does
    /// not matter. The assignment itself is configuration and survives full
    /// eviction of the file.
    pub fn set_file_group(&mut self, file: FileId, group: Option<u32>) {
        let (cached, dirty) = self
            .per_file
            .get(&file)
            .map_or((0.0, 0.0), |f| (f.bytes.cached, f.bytes.dirty));
        if let Some(old) = self.group_of.get(&file).copied() {
            if let Some(gb) = self.group_bytes.get_mut(&old) {
                gb.cached = (gb.cached - cached).max(0.0);
                gb.dirty = (gb.dirty - dirty).max(0.0);
            }
        }
        match group {
            Some(g) => {
                self.group_of.insert(file, g);
                let gb = self.group_bytes.entry(g).or_default();
                gb.cached += cached;
                gb.dirty += dirty;
            }
            None => {
                self.group_of.remove(&file);
            }
        }
        self.debug_validate();
    }

    /// The cache group `file` is assigned to, if any. O(1) expected.
    pub fn file_group(&self, file: &FileId) -> Option<u32> {
        self.group_of.get(file).copied()
    }

    /// Cached bytes of cache group `group` (clean + dirty, all tiers). O(1).
    pub fn group_cached(&self, group: u32) -> f64 {
        self.group_bytes.get(&group).map_or(0.0, |g| g.cached)
    }

    /// Dirty bytes of cache group `group` (all tiers). O(1).
    pub fn group_dirty(&self, group: u32) -> f64 {
        self.group_bytes.get(&group).map_or(0.0, |g| g.dirty)
    }

    /// Removes up to `amount` bytes of clean data belonging to cache group
    /// `group` from the evictable tiers — the group-scoped analogue of
    /// [`LruLists::evict`], same tier order, same LRU order, same
    /// second-chance passes under reference-bit policies. Blocks of other
    /// groups (or of no group) are skipped, so one tenant's overflow never
    /// reclaims a neighbour's pages. Returns the number of bytes evicted.
    pub fn evict_group(&mut self, amount: f64, group: u32) -> f64 {
        if amount <= EPSILON || self.group_cached(group) <= EPSILON {
            return 0.0;
        }
        self.balance();
        let mut evicted = 0.0;
        let order = self.policy.tier_order();
        let use_ref = self.policy.uses_reference_bits();
        let passes = if use_ref { 2 } else { 1 };
        'reclaim: for pass in 0..passes {
            for t in order {
                if !self.evictable_mask[t] {
                    continue;
                }
                let mut i = self.lists[t].recency.head;
                while i != NIL && evicted < amount - EPSILON {
                    let next = node_ref(&self.arena, i).links[RECENCY].next;
                    let is_candidate = {
                        let b = &node_ref(&self.arena, i).block;
                        !b.dirty && self.group_of.get(&b.file) == Some(&group)
                    };
                    if is_candidate {
                        if pass == 0 && use_ref && node_ref(&self.arena, i).referenced {
                            // Second chance: spare the block once.
                            node_mut(&mut self.arena, i).referenced = false;
                        } else {
                            let need = amount - evicted;
                            let size = node_ref(&self.arena, i).block.size;
                            if size <= need + EPSILON {
                                let blk = self.remove_node(i);
                                evicted += blk.size;
                                self.policy.on_evict(&blk.file, t);
                            } else {
                                node_mut(&mut self.arena, i).block.size -= need;
                                let file = node_ref(&self.arena, i).block.file.clone();
                                self.agg_shrink(t, &file, need, false);
                                evicted += need;
                                self.policy.on_evict(&file, t);
                                break 'reclaim;
                            }
                        }
                    }
                    i = next;
                }
                if evicted >= amount - EPSILON {
                    break 'reclaim;
                }
            }
        }
        self.debug_validate();
        evicted
    }

    /// Marks up to `amount` bytes of dirty data belonging to cache group
    /// `group` as clean, least recently used first — the group-scoped
    /// analogue of [`LruLists::flush_lru`], walking the per-tier dirty
    /// chains and skipping other groups' blocks. Returns the number of bytes
    /// flushed; the caller simulates the corresponding disk write.
    pub fn flush_group(&mut self, amount: f64, group: u32) -> f64 {
        if amount <= EPSILON || self.group_dirty(group) <= EPSILON {
            return 0.0;
        }
        let mut flushed = 0.0;
        for t in self.policy.tier_order() {
            if self.lists[t].agg.dirty <= EPSILON {
                continue;
            }
            let mut i = self.lists[t].dirty.head;
            while i != NIL {
                let next = node_ref(&self.arena, i).links[DIRTY].next;
                if flushed >= amount - EPSILON {
                    self.debug_validate();
                    return flushed;
                }
                let is_candidate = {
                    let b = &node_ref(&self.arena, i).block;
                    self.group_of.get(&b.file) == Some(&group)
                };
                if is_candidate {
                    let need = amount - flushed;
                    let size = node_ref(&self.arena, i).block.size;
                    if size <= need + EPSILON {
                        node_mut(&mut self.arena, i).block.dirty = false;
                        let file = node_ref(&self.arena, i).block.file.clone();
                        self.unlink_dirty(i);
                        flushed += size;
                        self.agg_clean_in_place(t, &file, size);
                        self.try_coalesce(i);
                    } else {
                        let mut head = node_mut(&mut self.arena, i).block.split_off(need);
                        head.dirty = false;
                        flushed += head.size;
                        let file = head.file.clone();
                        let head_size = head.size;
                        let head_idx = self.insert_node_before(t, head, i);
                        self.agg_clean_in_place(t, &file, head_size);
                        self.agg_note_split(&file);
                        self.try_coalesce(head_idx);
                        self.debug_validate();
                        return flushed;
                    }
                }
                i = next;
            }
        }
        self.debug_validate();
        flushed
    }

    /// Iterates over all blocks, tier 0 first, LRU first within each tier.
    pub fn iter_all(&self) -> impl Iterator<Item = &DataBlock> {
        (0..MAX_TIERS).flat_map(|t| self.tier_blocks(t))
    }

    /// Blocks of tier `t`, LRU first.
    pub fn tier_blocks(&self, t: usize) -> ChainBlocks<'_> {
        ChainBlocks {
            arena: &self.arena,
            cur: self.lists[t].recency.head,
            lk: RECENCY,
        }
    }

    /// Blocks of tier 0 (the inactive list under the default 2-list policy),
    /// LRU first.
    pub fn inactive_blocks(&self) -> ChainBlocks<'_> {
        self.tier_blocks(0)
    }

    /// Blocks of tier 1 (the active list under the default 2-list policy),
    /// LRU first.
    pub fn active_blocks(&self) -> ChainBlocks<'_> {
        self.tier_blocks(1)
    }

    /// Allocates an arena slot for `node`, reusing the free list.
    fn alloc(&mut self, node: Node) -> Idx {
        if self.free_head != NIL {
            let idx = self.free_head;
            match self.arena[idx as usize] {
                Slot::Vacant { next_free } => self.free_head = next_free,
                Slot::Occupied(_) => unreachable!("free list points at occupied slot"),
            }
            self.arena[idx as usize] = Slot::Occupied(node);
            idx
        } else {
            let idx = self.arena.len() as Idx;
            assert!(idx != NIL, "arena exhausted u32 index space");
            self.arena.push(Slot::Occupied(node));
            idx
        }
    }

    /// Returns slot `i` to the free list and takes its node out.
    fn release(&mut self, i: Idx) -> Node {
        let slot = std::mem::replace(
            &mut self.arena[i as usize],
            Slot::Vacant {
                next_free: self.free_head,
            },
        );
        self.free_head = i;
        match slot {
            Slot::Occupied(n) => n,
            Slot::Vacant { .. } => panic!("released a vacant arena slot {i}"),
        }
    }

    /// Records a block joining `tier` in the aggregates. The counters only
    /// need its metadata; chain membership is handled separately.
    fn agg_insert(&mut self, tier: usize, block: &DataBlock) {
        self.lists[tier].agg.add(block.size, block.dirty);
        if let Some(&g) = self.group_of.get(&block.file) {
            let gb = self.group_bytes.entry(g).or_default();
            gb.cached += block.size;
            if block.dirty {
                gb.dirty += block.size;
            }
        }
        let evictable = self.evictable_mask[tier];
        let f = &mut self.per_file.entry(block.file.clone()).or_default().bytes;
        f.cached += block.size;
        f.blocks += 1;
        if block.dirty {
            f.dirty += block.size;
        }
        if evictable {
            f.inactive_bytes += block.size;
            if !block.dirty {
                f.inactive_clean += block.size;
            }
        }
    }

    /// Records a block leaving `tier` in the aggregates, dropping the
    /// per-file entry once its last block is gone.
    fn agg_remove(&mut self, tier: usize, block: &DataBlock) {
        self.lists[tier].agg.sub(block.size, block.dirty);
        if let Some(&g) = self.group_of.get(&block.file) {
            if let Some(gb) = self.group_bytes.get_mut(&g) {
                gb.cached = (gb.cached - block.size).max(0.0);
                if block.dirty {
                    gb.dirty = (gb.dirty - block.size).max(0.0);
                }
            }
        }
        let evictable = self.evictable_mask[tier];
        if let Some(entry) = self.per_file.get_mut(&block.file) {
            let f = &mut entry.bytes;
            f.cached = (f.cached - block.size).max(0.0);
            f.blocks = f.blocks.saturating_sub(1);
            if block.dirty {
                f.dirty = (f.dirty - block.size).max(0.0);
            }
            if evictable {
                f.inactive_bytes = (f.inactive_bytes - block.size).max(0.0);
                if !block.dirty {
                    f.inactive_clean = (f.inactive_clean - block.size).max(0.0);
                }
            }
            if f.blocks == 0 {
                debug_assert!(
                    entry.chains.iter().all(|c| c.is_empty()),
                    "dropping per-file entry with linked blocks"
                );
                self.per_file.remove(&block.file);
            }
        }
    }

    /// Records `amount` bytes of a dirty block on `tier` turning clean in
    /// place (a flush). Sizes do not change, only dirtiness.
    fn agg_clean_in_place(&mut self, tier: usize, file: &FileId, amount: f64) {
        let agg = &mut self.lists[tier].agg;
        agg.dirty = (agg.dirty - amount).max(0.0);
        if let Some(&g) = self.group_of.get(file) {
            if let Some(gb) = self.group_bytes.get_mut(&g) {
                gb.dirty = (gb.dirty - amount).max(0.0);
            }
        }
        let evictable = self.evictable_mask[tier];
        if let Some(f) = self.per_file.get_mut(file) {
            f.bytes.dirty = (f.bytes.dirty - amount).max(0.0);
            if evictable {
                f.bytes.inactive_clean += amount;
            }
        }
    }

    /// Records a block on `tier` shrinking by `amount` bytes in place with
    /// unchanged block count (a partial eviction or a partial take; the split
    /// head is accounted separately when it is re-inserted).
    fn agg_shrink(&mut self, tier: usize, file: &FileId, amount: f64, dirty: bool) {
        self.lists[tier].agg.sub(amount, dirty);
        if let Some(&g) = self.group_of.get(file) {
            if let Some(gb) = self.group_bytes.get_mut(&g) {
                gb.cached = (gb.cached - amount).max(0.0);
                if dirty {
                    gb.dirty = (gb.dirty - amount).max(0.0);
                }
            }
        }
        let evictable = self.evictable_mask[tier];
        if let Some(f) = self.per_file.get_mut(file) {
            let f = &mut f.bytes;
            f.cached = (f.cached - amount).max(0.0);
            if dirty {
                f.dirty = (f.dirty - amount).max(0.0);
            }
            if evictable {
                f.inactive_bytes = (f.inactive_bytes - amount).max(0.0);
                if !dirty {
                    f.inactive_clean = (f.inactive_clean - amount).max(0.0);
                }
            }
        }
    }

    /// Records one extra block of `file` appearing without any byte change
    /// (a block split whose both halves stay in the lists).
    fn agg_note_split(&mut self, file: &FileId) {
        if let Some(f) = self.per_file.get_mut(file) {
            f.bytes.blocks += 1;
        }
    }

    /// Inserts `block` as a new node on `tier`: updates the aggregates and
    /// links it into the recency, per-file and (if dirty) dirty chains at its
    /// sorted position. O(1) in the common append case.
    fn insert_node(&mut self, tier: usize, block: DataBlock, referenced: bool) -> Idx {
        self.agg_insert(tier, &block);
        let file = block.file.clone();
        let dirty = block.dirty;
        let idx = self.alloc(Node {
            block,
            tier,
            referenced,
            links: [UNLINKED; 3],
        });
        insert_sorted(&mut self.arena, &mut self.lists[tier].recency, RECENCY, idx);
        self.lists[tier].len += 1;
        let entry = self.per_file.get_mut(&file).expect("agg_insert created it");
        insert_sorted(&mut self.arena, &mut entry.chains[tier], FILE, idx);
        if dirty {
            insert_sorted(&mut self.arena, &mut self.lists[tier].dirty, DIRTY, idx);
        }
        idx
    }

    /// Inserts `block` as a new clean node on `tier` directly before `anchor`
    /// (a node of the same file, whose reference bit the split head shares)
    /// in the recency and per-file chains. Used by the flush split, where the
    /// clean head must sit right before the dirty remainder; total bytes are
    /// unchanged, so the caller adjusts the aggregates via
    /// [`LruLists::agg_clean_in_place`] + [`LruLists::agg_note_split`].
    fn insert_node_before(&mut self, tier: usize, block: DataBlock, anchor: Idx) -> Idx {
        debug_assert!(!block.dirty, "flush split head must be clean");
        let file = block.file.clone();
        let referenced = node_ref(&self.arena, anchor).referenced;
        let idx = self.alloc(Node {
            block,
            tier,
            referenced,
            links: [UNLINKED; 3],
        });
        insert_before(
            &mut self.arena,
            &mut self.lists[tier].recency,
            RECENCY,
            anchor,
            idx,
        );
        self.lists[tier].len += 1;
        let entry = self.per_file.get_mut(&file).expect("remainder keeps entry");
        insert_before(&mut self.arena, &mut entry.chains[tier], FILE, anchor, idx);
        idx
    }

    /// Unlinks node `i` from every chain, updates the aggregates, frees the
    /// slot and returns the block. O(1).
    fn remove_node(&mut self, i: Idx) -> DataBlock {
        let (tier, file, dirty) = {
            let n = node_ref(&self.arena, i);
            (n.tier, n.block.file.clone(), n.block.dirty)
        };
        unlink(&mut self.arena, &mut self.lists[tier].recency, RECENCY, i);
        self.lists[tier].len -= 1;
        let entry = self
            .per_file
            .get_mut(&file)
            .expect("linked block has entry");
        unlink(&mut self.arena, &mut entry.chains[tier], FILE, i);
        if dirty {
            unlink(&mut self.arena, &mut self.lists[tier].dirty, DIRTY, i);
        }
        let node = self.release(i);
        self.agg_remove(tier, &node.block);
        node.block
    }

    /// Removes node `i` from the dirty chain of its tier (after its block was
    /// marked clean in place).
    fn unlink_dirty(&mut self, i: Idx) {
        let t = node_ref(&self.arena, i).tier;
        unlink(&mut self.arena, &mut self.lists[t].dirty, DIRTY, i);
    }

    /// Whether nodes `a` and `b` (recency-adjacent, `a` before `b`) can be
    /// coalesced: same evictable tier, both clean, same file, the same
    /// reference bit, and — crucially — the *same* last access time. Merging
    /// blocks with different timestamps would move the earlier block's bytes
    /// past the insertion point of a later out-of-order insert (a demotion
    /// with an intermediate timestamp), reordering bytes relative to other
    /// files; equal timestamps leave no such point, so any future insertion
    /// lands strictly before or after the merged block in both the merged
    /// and unmerged orders. Equal reference bits keep the second-chance
    /// outcome of every byte unchanged under CLOCK-style policies.
    fn mergeable(&self, a: Idx, b: Idx) -> bool {
        let na = node_ref(&self.arena, a);
        let nb = node_ref(&self.arena, b);
        na.tier == nb.tier
            && self.evictable_mask[na.tier]
            && na.referenced == nb.referenced
            && !na.block.dirty
            && !nb.block.dirty
            && na.block.last_access == nb.block.last_access
            && na.block.file == nb.block.file
    }

    /// Merges recency-adjacent node `from` into its successor `into` (same
    /// file, both clean, same evictable tier): `into` absorbs the bytes,
    /// keeps its own (later) `last_access`, and `from` is freed. Byte
    /// aggregates are unchanged; only the block count drops.
    fn merge_into(&mut self, from: Idx, into: Idx) {
        debug_assert!(self.mergeable(from, into));
        debug_assert_eq!(node_ref(&self.arena, from).links[RECENCY].next, into);
        let t = node_ref(&self.arena, from).tier;
        unlink(&mut self.arena, &mut self.lists[t].recency, RECENCY, from);
        self.lists[t].len -= 1;
        let file = node_ref(&self.arena, from).block.file.clone();
        let entry = self
            .per_file
            .get_mut(&file)
            .expect("linked block has entry");
        unlink(&mut self.arena, &mut entry.chains[t], FILE, from);
        let from_node = self.release(from);
        let into_node = node_mut(&mut self.arena, into);
        into_node.block.size += from_node.block.size;
        // Clean blocks never expire, so the merged entry time is inert; keep
        // the earlier one for a deterministic, order-independent result.
        into_node.block.entry_time = into_node.block.entry_time.min(from_node.block.entry_time);
        if let Some(f) = self.per_file.get_mut(&file) {
            f.bytes.blocks -= 1;
        }
    }

    /// Opportunistically coalesces node `i` with its recency neighbors when
    /// they are clean same-tier blocks of the same file on an evictable
    /// tier. Returns the surviving node. Amortized O(1); bounds arena growth
    /// under flush splits.
    fn try_coalesce(&mut self, i: Idx) -> Idx {
        {
            let n = node_ref(&self.arena, i);
            if !self.evictable_mask[n.tier] || n.block.dirty {
                return i;
            }
        }
        let mut cur = i;
        let next = node_ref(&self.arena, cur).links[RECENCY].next;
        if next != NIL && self.mergeable(cur, next) {
            self.merge_into(cur, next);
            cur = next;
        }
        let prev = node_ref(&self.arena, cur).links[RECENCY].prev;
        if prev != NIL && self.mergeable(prev, cur) {
            self.merge_into(prev, cur);
        }
        cur
    }

    /// Adds a clean block (data just read from disk) to the tier the policy
    /// admits first-touch data to (the inactive list under the default
    /// 2-list policy).
    pub fn add_clean(&mut self, file: FileId, size: f64, now: SimTime) {
        if size <= EPSILON {
            return;
        }
        let bytes = self.tier_bytes();
        let tier = self.policy.insert_tier(&file, &bytes);
        let idx = self.insert_node(tier, DataBlock::clean(file, size, now), false);
        self.try_coalesce(idx);
        self.balance();
        self.debug_validate();
    }

    /// Adds a dirty block (data just written by the application) to the
    /// policy's first-touch tier.
    pub fn add_dirty(&mut self, file: FileId, size: f64, now: SimTime) {
        if size <= EPSILON {
            return;
        }
        let bytes = self.tier_bytes();
        let tier = self.policy.insert_tier(&file, &bytes);
        self.insert_node(tier, DataBlock::dirty(file, size, now), false);
        self.balance();
        self.debug_validate();
    }

    /// Simulates a read of `amount` cached bytes of `file` (paper §III-A-2):
    /// blocks are consumed tier by tier in the policy's reclaim-first order
    /// (inactive before active under the default 2-list policy), least
    /// recently used first; clean portions are merged into a single new
    /// block appended to the policy's promotion tier; dirty portions move
    /// there individually, preserving their entry time. Returns the number
    /// of bytes that were actually cached (which may be less than `amount`).
    ///
    /// Only the target file's blocks are touched (its per-file chains), so
    /// the cost is O(k) in the file's block count, independent of how many
    /// blocks of other files surround them.
    pub fn read_cached(&mut self, file: &FileId, amount: f64, now: SimTime) -> f64 {
        if amount <= EPSILON || self.cached_amount(file) <= EPSILON {
            return 0.0;
        }
        let bytes = self.tier_bytes();
        let dest = self.policy.promote_tier(file, &bytes);
        let referenced = self.policy.uses_reference_bits();
        let taken = self.take_for_read(file, amount);
        let mut clean_total = 0.0;
        let mut read_total = 0.0;
        for blk in taken {
            read_total += blk.size;
            if blk.dirty {
                let promoted = DataBlock {
                    file: blk.file,
                    size: blk.size,
                    entry_time: blk.entry_time,
                    last_access: now,
                    dirty: true,
                };
                self.insert_node(dest, promoted, referenced);
            } else {
                clean_total += blk.size;
            }
        }
        if clean_total > EPSILON {
            let merged = DataBlock::clean(file.clone(), clean_total, now);
            let idx = self.insert_node(dest, merged, referenced);
            self.try_coalesce(idx);
        }
        self.debug_validate();
        read_total
    }

    /// Removes up to `amount` bytes of `file` from the tiers in the policy's
    /// reclaim-first order, LRU first, splitting the last block if needed.
    /// Walks only the file's own chains.
    fn take_for_read(&mut self, file: &FileId, amount: f64) -> Vec<DataBlock> {
        let mut taken = Vec::new();
        let mut remaining = amount;
        for tier in self.policy.tier_order() {
            if remaining <= EPSILON {
                break;
            }
            let Some(entry) = self.per_file.get(file) else {
                break;
            };
            let mut i = entry.chains[tier].head;
            while i != NIL && remaining > EPSILON {
                let next = node_ref(&self.arena, i).links[FILE].next;
                let size = node_ref(&self.arena, i).block.size;
                if size <= remaining + EPSILON {
                    let blk = self.remove_node(i);
                    remaining -= blk.size;
                    taken.push(blk);
                } else {
                    let head = node_mut(&mut self.arena, i).block.split_off(remaining);
                    // The head leaves the list (it is re-accounted when the
                    // promotion re-inserts it); the remainder keeps the block
                    // count.
                    self.agg_shrink(tier, file, head.size, head.dirty);
                    taken.push(head);
                    remaining = 0.0;
                    break;
                }
                i = next;
            }
        }
        taken
    }

    /// Marks up to `amount` bytes of dirty data as clean, least recently used
    /// first (tiers visited in the policy's reclaim-first order: inactive
    /// before active under the default 2-list policy), optionally excluding
    /// one file. The last block is split if it only needs to be partially
    /// flushed. Returns the number of bytes flushed; the caller is
    /// responsible for simulating the corresponding disk write time.
    ///
    /// Steps straight from one dirty block to the next along the per-tier
    /// dirty chains — clean blocks are never visited.
    ///
    /// Calling with a non-positive `amount` is a no-op (paper Algorithm 2:
    /// "when called with negative arguments, `flush` and `evict` simply
    /// return").
    pub fn flush_lru(&mut self, amount: f64, exclude: Option<&FileId>) -> f64 {
        if amount <= EPSILON || self.total_dirty() <= EPSILON {
            return 0.0;
        }
        let mut flushed = 0.0;
        for t in self.policy.tier_order() {
            if self.lists[t].agg.dirty <= EPSILON {
                continue;
            }
            let mut i = self.lists[t].dirty.head;
            while i != NIL {
                let next = node_ref(&self.arena, i).links[DIRTY].next;
                if flushed >= amount - EPSILON {
                    self.debug_validate();
                    return flushed;
                }
                let is_candidate =
                    exclude.is_none_or(|f| &node_ref(&self.arena, i).block.file != f);
                if is_candidate {
                    let need = amount - flushed;
                    let size = node_ref(&self.arena, i).block.size;
                    if size <= need + EPSILON {
                        node_mut(&mut self.arena, i).block.dirty = false;
                        let file = node_ref(&self.arena, i).block.file.clone();
                        self.unlink_dirty(i);
                        flushed += size;
                        self.agg_clean_in_place(t, &file, size);
                        self.try_coalesce(i);
                    } else {
                        let mut head = node_mut(&mut self.arena, i).block.split_off(need);
                        head.dirty = false;
                        flushed += head.size;
                        let file = head.file.clone();
                        let head_size = head.size;
                        // Same last-access time as the remainder: insert right
                        // before it to keep the chains ordered. Splitting a
                        // dirty block into a clean head plus a dirty remainder
                        // leaves total bytes unchanged: only the dirty share
                        // and the block count move.
                        let head_idx = self.insert_node_before(t, head, i);
                        self.agg_clean_in_place(t, &file, head_size);
                        self.agg_note_split(&file);
                        self.try_coalesce(head_idx);
                        self.debug_validate();
                        return flushed;
                    }
                }
                i = next;
            }
        }
        self.debug_validate();
        flushed
    }

    /// Removes up to `amount` bytes of clean data from the policy's
    /// evictable tiers (the inactive list under the default 2-list policy),
    /// visiting tiers in the policy's reclaim-first order, least recently
    /// used first within each, optionally excluding one file. The last block
    /// is split if it only needs to be partially evicted. Returns the number
    /// of bytes evicted. Non-positive amounts are a no-op.
    ///
    /// Under a policy with reference bits (CLOCK), eviction runs up to two
    /// passes: the first pass clears the reference bit of each referenced
    /// candidate instead of evicting it (the second chance); the second pass
    /// reclaims regardless, guaranteeing progress.
    pub fn evict(&mut self, amount: f64, exclude: Option<&FileId>) -> f64 {
        if amount <= EPSILON {
            return 0.0;
        }
        // Memory pressure is when the kernel refills the inactive list from
        // the active list; re-balance before reclaiming so long-idle active
        // data becomes evictable.
        self.balance();
        let available = self.evictable(exclude);
        if available <= EPSILON {
            return 0.0;
        }
        let target = amount.min(available);
        let mut evicted = 0.0;
        let order = self.policy.tier_order();
        let use_ref = self.policy.uses_reference_bits();
        let passes = if use_ref { 2 } else { 1 };
        'reclaim: for pass in 0..passes {
            for t in order {
                if !self.evictable_mask[t] {
                    continue;
                }
                let mut i = self.lists[t].recency.head;
                while i != NIL && evicted < target - EPSILON {
                    let next = node_ref(&self.arena, i).links[RECENCY].next;
                    let is_candidate = {
                        let b = &node_ref(&self.arena, i).block;
                        !b.dirty && exclude.is_none_or(|f| &b.file != f)
                    };
                    if is_candidate {
                        if pass == 0 && use_ref && node_ref(&self.arena, i).referenced {
                            // Second chance: spare the block once.
                            node_mut(&mut self.arena, i).referenced = false;
                        } else {
                            let need = amount - evicted;
                            let size = node_ref(&self.arena, i).block.size;
                            if size <= need + EPSILON {
                                let blk = self.remove_node(i);
                                evicted += blk.size;
                                self.policy.on_evict(&blk.file, t);
                            } else {
                                node_mut(&mut self.arena, i).block.size -= need;
                                let file = node_ref(&self.arena, i).block.file.clone();
                                self.agg_shrink(t, &file, need, false);
                                evicted += need;
                                self.policy.on_evict(&file, t);
                                break 'reclaim;
                            }
                        }
                    }
                    i = next;
                }
                if evicted >= target - EPSILON {
                    break 'reclaim;
                }
            }
        }
        self.debug_validate();
        evicted
    }

    /// Marks every dirty block older than `expire` seconds as clean and
    /// returns the total number of bytes to be written back (paper
    /// Algorithm 1, the periodical flusher). Walks only the dirty chains,
    /// so the cost is O(dirty blocks), not O(all blocks).
    pub fn flush_expired(&mut self, now: SimTime, expire: f64) -> f64 {
        if self.total_dirty() <= EPSILON {
            return 0.0;
        }
        let mut flushed = 0.0;
        for t in 0..MAX_TIERS {
            let mut i = self.lists[t].dirty.head;
            while i != NIL {
                let next = node_ref(&self.arena, i).links[DIRTY].next;
                if node_ref(&self.arena, i).block.is_expired(now, expire) {
                    node_mut(&mut self.arena, i).block.dirty = false;
                    let (file, size) = {
                        let b = &node_ref(&self.arena, i).block;
                        (b.file.clone(), b.size)
                    };
                    self.unlink_dirty(i);
                    flushed += size;
                    self.agg_clean_in_place(t, &file, size);
                    self.try_coalesce(i);
                }
                i = next;
            }
        }
        self.debug_validate();
        flushed
    }

    /// Marks every dirty block of `file` clean (the cache side of an
    /// `fsync`), walking only the file's own per-(file, list) chains: O(k) in
    /// the file's block count, independent of how much other data is cached.
    /// Returns the number of bytes to be written back; the caller is
    /// responsible for simulating the corresponding disk write time.
    pub fn flush_file(&mut self, file: &FileId) -> f64 {
        if self.dirty_amount(file) <= EPSILON {
            return 0.0;
        }
        let mut flushed = 0.0;
        for t in 0..MAX_TIERS {
            let mut i = self.per_file.get(file).map_or(NIL, |e| e.chains[t].head);
            while i != NIL {
                // Coalescing only ever merges `i` or its already-visited
                // predecessor into a *later* surviving node, so the captured
                // successor stays valid.
                let next = node_ref(&self.arena, i).links[FILE].next;
                if node_ref(&self.arena, i).block.dirty {
                    let size = node_ref(&self.arena, i).block.size;
                    node_mut(&mut self.arena, i).block.dirty = false;
                    self.unlink_dirty(i);
                    flushed += size;
                    self.agg_clean_in_place(t, file, size);
                    self.try_coalesce(i);
                }
                i = next;
            }
        }
        self.debug_validate();
        flushed
    }

    /// Removes every block belonging to `file` (used when a simulated file is
    /// deleted). Returns the number of bytes removed. Walks only the file's
    /// own chains: O(k) in the file's block count.
    pub fn invalidate_file(&mut self, file: &FileId) -> f64 {
        if !self.per_file.contains_key(file) {
            return 0.0;
        }
        let mut removed = 0.0;
        for k in 0..MAX_TIERS {
            let mut i = self
                .per_file
                .get(file)
                .map_or(NIL, |entry| entry.chains[k].head);
            while i != NIL {
                let next = node_ref(&self.arena, i).links[FILE].next;
                let blk = self.remove_node(i);
                removed += blk.size;
                i = next;
            }
        }
        self.debug_validate();
        removed
    }

    /// Re-balances the tiers by repeatedly applying the policy's demotion
    /// rule: under the default 2-list policy, the active list holds at most
    /// twice the bytes of the inactive list, maintained by demoting least
    /// recently used active blocks (paper §III-A-1, after Gorman's
    /// description of the kernel behaviour). The demotion decision is O(1) —
    /// the byte totals are incremental, so no list is re-summed per demoted
    /// block — and re-linking the demoted block costs O(1) in the
    /// append-ordered case and at most a walk from the nearer end of the
    /// target chain otherwise; no elements are ever shifted.
    pub fn balance(&mut self) {
        loop {
            let bytes = self.tier_bytes();
            let lens = self.tier_lens();
            let Some((from, to)) = self.policy.demotion(&bytes, &lens) else {
                break;
            };
            let head = self.lists[from].recency.head;
            let demoted = self.remove_node(head);
            let idx = self.insert_node(to, demoted, false);
            self.try_coalesce(idx);
        }
    }

    /// Checks the structural invariants of the lists; used by tests and
    /// property-based tests.
    ///
    /// Invariants: every block has positive size and every tier is sorted by
    /// last access time, under every policy (the 2-list "active at most
    /// twice the inactive" property is maintained separately by
    /// [`LruLists::balance`], up to one block of slack, since balancing
    /// moves whole blocks).
    pub fn check_invariants(&self) -> Result<(), String> {
        for t in 0..MAX_TIERS {
            let blocks: Vec<&DataBlock> = self.tier_blocks(t).collect();
            for (a, b) in blocks.iter().zip(blocks.iter().skip(1)) {
                if a.last_access > b.last_access {
                    return Err(format!("tier {t} is not sorted by last access"));
                }
            }
            if let Some(b) = blocks.iter().find(|b| b.size <= 0.0) {
                return Err(format!(
                    "tier {t} contains a non-positive block ({})",
                    b.size
                ));
            }
        }
        self.check_chains()?;
        self.check_aggregates()?;
        Ok(())
    }

    /// Verifies the chain structure against the recency chains: every chain
    /// doubly linked and consistent with its endpoints, the dirty and
    /// per-file chains exactly the recency chain filtered by dirtiness /
    /// file, and the slab bookkeeping (lengths, free list) coherent.
    pub fn check_chains(&self) -> Result<(), String> {
        let collect = |head: Idx, lk: usize| -> Result<Vec<Idx>, String> {
            let mut out = Vec::new();
            let mut prev = NIL;
            let mut i = head;
            while i != NIL {
                if i as usize >= self.arena.len() {
                    return Err(format!("chain index {i} out of arena bounds"));
                }
                let Slot::Occupied(n) = &self.arena[i as usize] else {
                    return Err(format!("chain references vacant slot {i}"));
                };
                if n.links[lk].prev != prev {
                    return Err(format!("node {i}: bad prev link in dimension {lk}"));
                }
                out.push(i);
                prev = i;
                i = n.links[lk].next;
                if out.len() > self.arena.len() {
                    return Err("chain cycle detected".into());
                }
            }
            Ok(out)
        };
        let mut occupied = 0usize;
        for k in 0..MAX_TIERS {
            let list = &self.lists[k];
            let recency = collect(list.recency.head, RECENCY)?;
            if recency.last().copied().unwrap_or(NIL) != list.recency.tail {
                return Err(format!("list {k}: recency tail mismatch"));
            }
            if recency.len() != list.len {
                return Err(format!(
                    "list {k}: recency chain has {} nodes, len counter says {}",
                    recency.len(),
                    list.len
                ));
            }
            for &i in &recency {
                if node_ref(&self.arena, i).tier != k {
                    return Err(format!("node {i} linked into the wrong list"));
                }
            }
            occupied += recency.len();
            let dirty = collect(list.dirty.head, DIRTY)?;
            if dirty.last().copied().unwrap_or(NIL) != list.dirty.tail {
                return Err(format!("list {k}: dirty tail mismatch"));
            }
            let expected_dirty: Vec<Idx> = recency
                .iter()
                .copied()
                .filter(|&i| node_ref(&self.arena, i).block.dirty)
                .collect();
            if dirty != expected_dirty {
                return Err(format!(
                    "list {k}: dirty chain is not the dirty subsequence of the recency chain"
                ));
            }
            for (file, entry) in &self.per_file {
                let fchain = collect(entry.chains[k].head, FILE)?;
                if fchain.last().copied().unwrap_or(NIL) != entry.chains[k].tail {
                    return Err(format!("file {file}: chain tail mismatch on list {k}"));
                }
                let expected: Vec<Idx> = recency
                    .iter()
                    .copied()
                    .filter(|&i| &node_ref(&self.arena, i).block.file == file)
                    .collect();
                if fchain != expected {
                    return Err(format!(
                        "file {file}: chain is not its subsequence of list {k}'s recency chain"
                    ));
                }
            }
        }
        let vacant = self
            .arena
            .iter()
            .filter(|s| matches!(s, Slot::Vacant { .. }))
            .count();
        if occupied + vacant != self.arena.len() {
            return Err(format!(
                "arena has {} slots but {} occupied + {} vacant",
                self.arena.len(),
                occupied,
                vacant
            ));
        }
        let mut free = 0usize;
        let mut i = self.free_head;
        while i != NIL {
            let Slot::Vacant { next_free } = self.arena[i as usize] else {
                return Err(format!("free list references occupied slot {i}"));
            };
            free += 1;
            if free > self.arena.len() {
                return Err("free list cycle detected".into());
            }
            i = next_free;
        }
        if free != vacant {
            return Err(format!(
                "free list has {free} slots but {vacant} are vacant"
            ));
        }
        Ok(())
    }

    /// Verifies every incremental aggregate against a full-scan recomputation
    /// (the oracles the O(1) readers replaced). O(n); used by
    /// [`LruLists::check_invariants`], the randomized consistency tests and
    /// the `debug_assert!` validation after every mutation.
    pub fn check_aggregates(&self) -> Result<(), String> {
        fn close(a: f64, b: f64) -> bool {
            (a - b).abs() <= EPSILON + 1e-9 * b.abs()
        }
        for t in 0..MAX_TIERS {
            let agg = self.lists[t].agg;
            let recomputed = self.recompute_list_agg(t);
            if !close(agg.bytes, recomputed.bytes) {
                return Err(format!(
                    "tier {t} bytes counter {} != recomputed {}",
                    agg.bytes, recomputed.bytes
                ));
            }
            if !close(agg.dirty, recomputed.dirty) {
                return Err(format!(
                    "tier {t} dirty counter {} != recomputed {}",
                    agg.dirty, recomputed.dirty
                ));
            }
        }
        let scan = self.recompute_per_file();
        if scan.len() != self.per_file.len() {
            return Err(format!(
                "per-file map has {} entries, scan found {}",
                self.per_file.len(),
                scan.len()
            ));
        }
        for (file, expected) in &scan {
            let Some(actual) = self.per_file.get(file) else {
                return Err(format!("file {file} missing from per-file map"));
            };
            let actual = &actual.bytes;
            if actual.blocks != expected.blocks {
                return Err(format!(
                    "file {file}: block counter {} != scan {}",
                    actual.blocks, expected.blocks
                ));
            }
            for (what, a, b) in [
                ("cached", actual.cached, expected.cached),
                ("dirty", actual.dirty, expected.dirty),
                (
                    "inactive_bytes",
                    actual.inactive_bytes,
                    expected.inactive_bytes,
                ),
                (
                    "inactive_clean",
                    actual.inactive_clean,
                    expected.inactive_clean,
                ),
            ] {
                if !close(a, b) {
                    return Err(format!("file {file}: {what} counter {a} != scan {b}"));
                }
            }
        }
        // Group aggregates: recompute each group's cached/dirty sums from a
        // full block scan and compare; tracked groups absent from the scan
        // must have (approximately) zero counters.
        let mut group_scan: HashMap<u32, GroupBytes> = HashMap::new();
        for t in 0..MAX_TIERS {
            for b in self.tier_blocks(t) {
                if let Some(&g) = self.group_of.get(&b.file) {
                    let gb = group_scan.entry(g).or_default();
                    gb.cached += b.size;
                    if b.dirty {
                        gb.dirty += b.size;
                    }
                }
            }
        }
        for (&g, expected) in &group_scan {
            let actual = self.group_bytes.get(&g).copied().unwrap_or_default();
            if !close(actual.cached, expected.cached) {
                return Err(format!(
                    "group {g}: cached counter {} != scan {}",
                    actual.cached, expected.cached
                ));
            }
            if !close(actual.dirty, expected.dirty) {
                return Err(format!(
                    "group {g}: dirty counter {} != scan {}",
                    actual.dirty, expected.dirty
                ));
            }
        }
        for (&g, gb) in &self.group_bytes {
            if !group_scan.contains_key(&g) && (gb.cached > EPSILON || gb.dirty > EPSILON) {
                return Err(format!(
                    "group {g}: counters ({}, {}) but no blocks in the scan",
                    gb.cached, gb.dirty
                ));
            }
        }
        Ok(())
    }

    /// Scan-based oracle for one tier's aggregates.
    fn recompute_list_agg(&self, t: usize) -> ListAgg {
        let mut agg = ListAgg::default();
        for b in self.tier_blocks(t) {
            agg.add(b.size, b.dirty);
        }
        agg
    }

    /// Scan-based oracle for the per-file aggregates.
    fn recompute_per_file(&self) -> HashMap<FileId, FileBytes> {
        let mut map: HashMap<FileId, FileBytes> = HashMap::new();
        for t in 0..MAX_TIERS {
            let evictable = self.evictable_mask[t];
            for b in self.tier_blocks(t) {
                let f = map.entry(b.file.clone()).or_default();
                f.cached += b.size;
                f.blocks += 1;
                if b.dirty {
                    f.dirty += b.size;
                }
                if evictable {
                    f.inactive_bytes += b.size;
                    if !b.dirty {
                        f.inactive_clean += b.size;
                    }
                }
            }
        }
        map
    }

    /// Cross-checks the incremental counters and chain structure against the
    /// scan oracles after every mutation in debug builds; compiles to nothing
    /// in release builds so the hot paths stay O(1).
    #[inline]
    fn debug_validate(&self) {
        #[cfg(debug_assertions)]
        {
            if let Err(e) = self.check_chains() {
                panic!("intrusive chains diverged from recency truth: {e}");
            }
            if let Err(e) = self.check_aggregates() {
                panic!("incremental aggregates diverged from scan oracle: {e}");
            }
        }
    }
}

/// Iterator over the blocks of one chain, front (LRU) first.
pub struct ChainBlocks<'a> {
    arena: &'a [Slot],
    cur: Idx,
    lk: usize,
}

impl<'a> Iterator for ChainBlocks<'a> {
    type Item = &'a DataBlock;

    fn next(&mut self) -> Option<&'a DataBlock> {
        if self.cur == NIL {
            return None;
        }
        let node = node_ref(self.arena, self.cur);
        self.cur = node.links[self.lk].next;
        Some(&node.block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "expected {b}, got {a}");
    }

    fn nth<'a>(mut it: ChainBlocks<'a>, n: usize) -> &'a DataBlock {
        it.nth(n).expect("chain shorter than index")
    }

    #[test]
    fn new_cache_is_empty() {
        let lru = LruLists::new();
        assert!(lru.is_empty());
        assert_eq!(lru.total_cached(), 0.0);
        assert_eq!(lru.total_dirty(), 0.0);
        assert_eq!(lru.block_count(), 0);
    }

    #[test]
    fn first_access_goes_to_inactive_list() {
        let mut lru = LruLists::new();
        lru.add_clean("f1".into(), 100.0, t(1.0));
        lru.add_dirty("f2".into(), 50.0, t(2.0));
        assert_eq!(lru.inactive_blocks().count(), 2);
        assert_eq!(lru.active_blocks().count(), 0);
        approx(lru.total_cached(), 150.0);
        approx(lru.total_dirty(), 50.0);
        approx(lru.cached_amount(&"f1".into()), 100.0);
        approx(lru.dirty_amount(&"f2".into()), 50.0);
        lru.check_invariants().unwrap();
    }

    #[test]
    fn group_aggregates_track_all_mutation_paths() {
        let mut lru = LruLists::new();
        lru.set_file_group("a".into(), Some(1));
        lru.set_file_group("b".into(), Some(2));
        lru.add_clean("a".into(), 100.0, t(1.0));
        lru.add_dirty("a".into(), 50.0, t(2.0));
        lru.add_clean("b".into(), 70.0, t(3.0));
        lru.add_clean("ungrouped".into(), 30.0, t(4.0));
        approx(lru.group_cached(1), 150.0);
        approx(lru.group_dirty(1), 50.0);
        approx(lru.group_cached(2), 70.0);
        // Flushing and evicting through the global paths keeps the group
        // counters honest.
        lru.flush_lru(20.0, None);
        approx(lru.group_dirty(1), 30.0);
        lru.flush_file(&"a".into());
        approx(lru.group_dirty(1), 0.0);
        lru.invalidate_file(&"a".into());
        approx(lru.group_cached(1), 0.0);
        approx(lru.group_cached(2), 70.0);
        lru.check_invariants().unwrap();
    }

    #[test]
    fn group_assignment_after_io_moves_cached_bytes() {
        let mut lru = LruLists::new();
        lru.add_dirty("f".into(), 80.0, t(1.0));
        assert_eq!(lru.file_group(&"f".into()), None);
        lru.set_file_group("f".into(), Some(7));
        assert_eq!(lru.file_group(&"f".into()), Some(7));
        approx(lru.group_cached(7), 80.0);
        approx(lru.group_dirty(7), 80.0);
        // Reassignment moves the bytes; clearing removes them.
        lru.set_file_group("f".into(), Some(8));
        approx(lru.group_cached(7), 0.0);
        approx(lru.group_cached(8), 80.0);
        lru.set_file_group("f".into(), None);
        approx(lru.group_cached(8), 0.0);
        lru.check_invariants().unwrap();
    }

    #[test]
    fn evict_group_only_touches_the_groups_clean_blocks() {
        let mut lru = LruLists::new();
        lru.set_file_group("mine".into(), Some(1));
        lru.set_file_group("dirty".into(), Some(1));
        lru.set_file_group("theirs".into(), Some(2));
        lru.add_clean("mine".into(), 100.0, t(1.0));
        lru.add_dirty("dirty".into(), 40.0, t(2.0));
        lru.add_clean("theirs".into(), 60.0, t(3.0));
        lru.add_clean("shared".into(), 50.0, t(4.0));
        let evicted = lru.evict_group(300.0, 1);
        // Only group 1's clean bytes go; dirty, other-group and ungrouped
        // blocks stay.
        approx(evicted, 100.0);
        approx(lru.group_cached(1), 40.0);
        approx(lru.group_cached(2), 60.0);
        approx(lru.cached_amount(&"shared".into()), 50.0);
        // Partial eviction splits the block.
        let evicted = lru.evict_group(30.0, 2);
        approx(evicted, 30.0);
        approx(lru.group_cached(2), 30.0);
        lru.check_invariants().unwrap();
    }

    #[test]
    fn flush_group_cleans_only_the_groups_dirty_data() {
        let mut lru = LruLists::new();
        lru.set_file_group("mine".into(), Some(1));
        lru.set_file_group("theirs".into(), Some(2));
        lru.add_dirty("mine".into(), 100.0, t(1.0));
        lru.add_dirty("theirs".into(), 60.0, t(2.0));
        // Partial flush splits; the neighbour's dirty data is untouched.
        let flushed = lru.flush_group(30.0, 1);
        approx(flushed, 30.0);
        approx(lru.group_dirty(1), 70.0);
        approx(lru.group_dirty(2), 60.0);
        let flushed = lru.flush_group(1000.0, 1);
        approx(flushed, 70.0);
        approx(lru.group_dirty(1), 0.0);
        approx(lru.group_cached(1), 100.0);
        approx(lru.group_dirty(2), 60.0);
        lru.check_invariants().unwrap();
    }

    #[test]
    fn zero_sized_additions_are_ignored() {
        let mut lru = LruLists::new();
        lru.add_clean("f".into(), 0.0, t(1.0));
        lru.add_dirty("f".into(), -5.0, t(1.0));
        assert!(lru.is_empty());
    }

    #[test]
    fn second_access_promotes_to_active_and_merges_clean_blocks() {
        let mut lru = LruLists::new();
        let f: FileId = "f1".into();
        lru.add_clean(f.clone(), 100.0, t(1.0));
        lru.add_clean(f.clone(), 200.0, t(2.0));
        let read = lru.read_cached(&f, 300.0, t(3.0));
        approx(read, 300.0);
        // Both clean blocks were merged into a single active block.
        assert_eq!(lru.inactive_blocks().count(), 0);
        assert_eq!(lru.active_blocks().count(), 1);
        approx(nth(lru.active_blocks(), 0).size, 300.0);
        assert!(!nth(lru.active_blocks(), 0).dirty);
        assert_eq!(nth(lru.active_blocks(), 0).last_access, t(3.0));
        lru.check_invariants().unwrap();
    }

    #[test]
    fn adjacent_clean_inactive_blocks_of_one_file_coalesce() {
        let mut lru = LruLists::new();
        let f: FileId = "f".into();
        // Same simulated instant (e.g. two chunks of one request): one node.
        lru.add_clean(f.clone(), 100.0, t(1.0));
        lru.add_clean(f.clone(), 200.0, t(1.0));
        assert_eq!(lru.block_count(), 1);
        approx(lru.cached_amount(&f), 300.0);
        approx(nth(lru.inactive_blocks(), 0).size, 300.0);
        assert_eq!(nth(lru.inactive_blocks(), 0).last_access, t(1.0));
        // Different timestamps must NOT coalesce: a later demotion with an
        // intermediate timestamp could otherwise land on the wrong side of
        // the merged bytes.
        lru.add_clean(f.clone(), 50.0, t(2.0));
        assert_eq!(lru.block_count(), 2);
        lru.check_invariants().unwrap();
    }

    #[test]
    fn coalescing_skips_other_files_dirty_blocks_and_the_active_list() {
        let mut lru = LruLists::new();
        lru.add_clean("a".into(), 100.0, t(1.0));
        lru.add_clean("b".into(), 100.0, t(2.0));
        assert_eq!(lru.block_count(), 2); // different files
        let mut lru = LruLists::new();
        lru.add_dirty("a".into(), 100.0, t(1.0));
        lru.add_dirty("a".into(), 100.0, t(2.0));
        assert_eq!(lru.block_count(), 2); // dirty blocks never coalesce
        let f: FileId = "p".into();
        let mut lru = LruLists::new();
        lru.add_clean(f.clone(), 100.0, t(1.0));
        lru.read_cached(&f, 100.0, t(2.0));
        lru.add_clean(f.clone(), 50.0, t(3.0));
        lru.read_cached(&f, 50.0, t(4.0));
        // Both blocks are clean, same file, but live on the active list where
        // coalescing would coarsen demotion granularity.
        assert!(lru.active_blocks().count() >= 1);
        lru.check_invariants().unwrap();
    }

    #[test]
    fn flush_turning_blocks_clean_coalesces_them() {
        let mut lru = LruLists::new();
        let f: FileId = "f".into();
        // Two dirty blocks written at the same instant (one request, two
        // chunks).
        lru.add_dirty(f.clone(), 100.0, t(1.0));
        lru.add_dirty(f.clone(), 100.0, t(1.0));
        assert_eq!(lru.block_count(), 2);
        let flushed = lru.flush_lru(200.0, None);
        approx(flushed, 200.0);
        approx(lru.total_dirty(), 0.0);
        // Both blocks turned clean and merged into one arena node.
        assert_eq!(lru.block_count(), 1);
        approx(nth(lru.inactive_blocks(), 0).size, 200.0);
        lru.check_invariants().unwrap();
    }

    #[test]
    fn repeated_partial_flushes_do_not_grow_the_arena() {
        // A partial flush splits a clean head off the dirty remainder at the
        // same timestamp; the heads must coalesce fragment by fragment
        // instead of accumulating one node per flush.
        let mut lru = LruLists::new();
        let f: FileId = "f".into();
        lru.add_dirty(f.clone(), 1000.0, t(1.0));
        for _ in 0..100 {
            approx(lru.flush_lru(10.0, None), 10.0);
        }
        approx(lru.total_dirty(), 0.0);
        approx(lru.cached_amount(&f), 1000.0);
        // One clean block (all heads merged) — not 100 fragments.
        assert_eq!(lru.block_count(), 1);
        lru.check_invariants().unwrap();
    }

    #[test]
    fn dirty_blocks_move_to_active_individually_preserving_entry_time() {
        let mut lru = LruLists::new();
        let f: FileId = "f1".into();
        lru.add_dirty(f.clone(), 100.0, t(1.0));
        lru.add_dirty(f.clone(), 100.0, t(2.0));
        let read = lru.read_cached(&f, 200.0, t(5.0));
        approx(read, 200.0);
        assert_eq!(lru.active_blocks().count(), 2);
        let entries: Vec<f64> = lru
            .active_blocks()
            .map(|b| b.entry_time.as_secs())
            .collect();
        assert_eq!(entries, vec![1.0, 2.0]);
        assert!(lru.active_blocks().all(|b| b.dirty));
        assert!(lru.active_blocks().all(|b| b.last_access == t(5.0)));
    }

    #[test]
    fn partial_read_splits_a_block() {
        let mut lru = LruLists::new();
        let f: FileId = "f1".into();
        lru.add_clean(f.clone(), 100.0, t(1.0));
        let read = lru.read_cached(&f, 30.0, t(2.0));
        approx(read, 30.0);
        // 70 bytes remain on the inactive list, 30 were promoted.
        approx(lru.inactive_bytes(), 70.0);
        approx(lru.active_bytes(), 30.0);
        approx(lru.cached_amount(&f), 100.0);
        lru.check_invariants().unwrap();
    }

    #[test]
    fn read_cached_returns_only_what_is_cached() {
        let mut lru = LruLists::new();
        let f: FileId = "f1".into();
        lru.add_clean(f.clone(), 50.0, t(1.0));
        let read = lru.read_cached(&f, 200.0, t(2.0));
        approx(read, 50.0);
    }

    #[test]
    fn read_cached_ignores_other_files() {
        let mut lru = LruLists::new();
        lru.add_clean("f1".into(), 50.0, t(1.0));
        lru.add_clean("f2".into(), 80.0, t(2.0));
        let read = lru.read_cached(&"f1".into(), 100.0, t(3.0));
        approx(read, 50.0);
        approx(lru.cached_amount(&"f2".into()), 80.0);
        // f2 stayed on the inactive list.
        assert_eq!(lru.inactive_blocks().count(), 1);
        assert_eq!(nth(lru.inactive_blocks(), 0).file, "f2".into());
    }

    #[test]
    fn inactive_list_is_consumed_before_active_list() {
        let mut lru = LruLists::new();
        let f: FileId = "f1".into();
        // One block on the active list (accessed twice) ...
        lru.add_clean(f.clone(), 100.0, t(1.0));
        lru.read_cached(&f, 100.0, t(2.0));
        assert_eq!(lru.active_blocks().count(), 1);
        // ... and a newer block on the inactive list.
        lru.add_clean(f.clone(), 100.0, t(3.0));
        // Reading 100 bytes must consume the inactive block, not the active one.
        let read = lru.read_cached(&f, 100.0, t(4.0));
        approx(read, 100.0);
        // The active list now holds the original block plus the newly promoted
        // one; the inactive list may hold demoted blocks from balancing but no
        // block with last_access == 3.0.
        assert!(lru.iter_all().all(|b| b.last_access != t(3.0)));
    }

    #[test]
    fn flush_marks_lru_dirty_blocks_clean_in_order() {
        let mut lru = LruLists::new();
        lru.add_dirty("f1".into(), 100.0, t(1.0));
        lru.add_dirty("f2".into(), 100.0, t(2.0));
        let flushed = lru.flush_lru(120.0, None);
        approx(flushed, 120.0);
        approx(lru.total_dirty(), 80.0);
        // The oldest block (f1) is fully clean, f2 was split.
        approx(lru.dirty_amount(&"f1".into()), 0.0);
        approx(lru.dirty_amount(&"f2".into()), 80.0);
        assert_eq!(lru.block_count(), 3);
        lru.check_invariants().unwrap();
    }

    #[test]
    fn flush_with_nonpositive_amount_is_noop() {
        let mut lru = LruLists::new();
        lru.add_dirty("f1".into(), 100.0, t(1.0));
        assert_eq!(lru.flush_lru(0.0, None), 0.0);
        assert_eq!(lru.flush_lru(-50.0, None), 0.0);
        approx(lru.total_dirty(), 100.0);
    }

    #[test]
    fn flush_excludes_requested_file() {
        let mut lru = LruLists::new();
        lru.add_dirty("f1".into(), 100.0, t(1.0));
        lru.add_dirty("f2".into(), 100.0, t(2.0));
        let f1: FileId = "f1".into();
        let flushed = lru.flush_lru(150.0, Some(&f1));
        approx(flushed, 100.0); // only f2 was eligible
        approx(lru.dirty_amount(&f1), 100.0);
        approx(lru.dirty_amount(&"f2".into()), 0.0);
    }

    #[test]
    fn flush_caps_at_available_dirty_data() {
        let mut lru = LruLists::new();
        lru.add_dirty("f1".into(), 60.0, t(1.0));
        lru.add_clean("f2".into(), 500.0, t(2.0));
        let flushed = lru.flush_lru(1000.0, None);
        approx(flushed, 60.0);
        approx(lru.total_dirty(), 0.0);
    }

    #[test]
    fn evict_removes_clean_inactive_blocks_lru_first() {
        let mut lru = LruLists::new();
        lru.add_clean("f1".into(), 100.0, t(1.0));
        lru.add_clean("f2".into(), 100.0, t(2.0));
        lru.add_dirty("f3".into(), 100.0, t(3.0));
        let evicted = lru.evict(150.0, None);
        approx(evicted, 150.0);
        approx(lru.cached_amount(&"f1".into()), 0.0);
        approx(lru.cached_amount(&"f2".into()), 50.0);
        // Dirty data is never evicted.
        approx(lru.cached_amount(&"f3".into()), 100.0);
        lru.check_invariants().unwrap();
    }

    #[test]
    fn evict_skips_dirty_and_excluded_and_active_blocks() {
        let mut lru = LruLists::new();
        let f1: FileId = "f1".into();
        // Promote f1 to the active list.
        lru.add_clean(f1.clone(), 100.0, t(1.0));
        lru.read_cached(&f1, 100.0, t(2.0));
        lru.add_dirty("f2".into(), 100.0, t(3.0));
        lru.add_clean("f3".into(), 100.0, t(4.0));
        let f3: FileId = "f3".into();
        // Only f3 is clean+inactive, and it is excluded -> nothing to evict.
        let evicted = lru.evict(300.0, Some(&f3));
        approx(evicted, 0.0);
        // Without the exclusion, only f3 can be evicted.
        let evicted = lru.evict(300.0, None);
        approx(evicted, 100.0);
        approx(lru.total_cached(), 200.0);
    }

    #[test]
    fn evict_with_nonpositive_amount_is_noop() {
        let mut lru = LruLists::new();
        lru.add_clean("f1".into(), 100.0, t(1.0));
        assert_eq!(lru.evict(-10.0, None), 0.0);
        approx(lru.total_cached(), 100.0);
    }

    #[test]
    fn evictable_counts_only_clean_inactive_blocks() {
        let mut lru = LruLists::new();
        let f1: FileId = "f1".into();
        lru.add_clean(f1.clone(), 100.0, t(1.0));
        lru.read_cached(&f1, 100.0, t(2.0)); // now active
        lru.add_clean("f2".into(), 70.0, t(3.0));
        lru.add_dirty("f3".into(), 30.0, t(4.0));
        // Balancing may demote the f1 block back to inactive (active must stay
        // <= 2x inactive); account for whichever split results.
        let evictable = lru.evictable(None);
        let clean_inactive: f64 = lru
            .inactive_blocks()
            .filter(|b| !b.dirty)
            .map(|b| b.size)
            .sum();
        approx(evictable, clean_inactive);
        let f2: FileId = "f2".into();
        assert!(lru.evictable(Some(&f2)) <= evictable - 70.0 + EPSILON);
    }

    #[test]
    fn flush_expired_only_touches_old_dirty_blocks() {
        let mut lru = LruLists::new();
        lru.add_dirty("f1".into(), 100.0, t(0.0));
        lru.add_dirty("f2".into(), 100.0, t(20.0));
        lru.add_clean("f3".into(), 100.0, t(0.0));
        let flushed = lru.flush_expired(t(35.0), 30.0);
        approx(flushed, 100.0); // only f1 is older than 30 s
        approx(lru.total_dirty(), 100.0);
        // A later pass flushes f2 once it expires.
        let flushed = lru.flush_expired(t(55.0), 30.0);
        approx(flushed, 100.0);
        approx(lru.total_dirty(), 0.0);
    }

    #[test]
    fn balance_demotes_lru_active_blocks() {
        let mut lru = LruLists::new();
        let f: FileId = "f".into();
        // Promote three separate dirty blocks (dirty blocks are not merged),
        // so the active list holds 300 bytes in three blocks.
        for i in 0..3 {
            lru.add_dirty(f.clone(), 100.0, t(i as f64));
        }
        lru.read_cached(&f, 300.0, t(10.0));
        assert_eq!(lru.active_blocks().count(), 3);
        approx(lru.inactive_bytes(), 0.0);
        // Balancing demotes least recently used active blocks until the
        // active list is at most twice the inactive list.
        lru.balance();
        assert!(lru.active_bytes() <= 2.0 * lru.inactive_bytes() + EPSILON);
        approx(lru.total_cached(), 300.0);
        lru.check_invariants().unwrap();
        // Eviction triggers the same re-balancing internally.
        let mut lru2 = LruLists::new();
        lru2.add_clean(f.clone(), 100.0, t(0.0));
        lru2.read_cached(&f, 100.0, t(1.0)); // now 100 bytes active, 0 inactive
        let evicted = lru2.evict(50.0, None);
        approx(evicted, 50.0);
        lru2.check_invariants().unwrap();
    }

    #[test]
    fn invalidate_file_removes_all_its_blocks() {
        let mut lru = LruLists::new();
        lru.add_clean("f1".into(), 100.0, t(1.0));
        lru.add_dirty("f1".into(), 50.0, t(2.0));
        lru.add_clean("f2".into(), 30.0, t(3.0));
        let removed = lru.invalidate_file(&"f1".into());
        approx(removed, 150.0);
        approx(lru.total_cached(), 30.0);
        approx(lru.cached_amount(&"f1".into()), 0.0);
    }

    #[test]
    fn arena_slots_are_reused_after_removal() {
        let mut lru = LruLists::new();
        for round in 0..5 {
            for i in 0..10 {
                lru.add_dirty(
                    FileId::new(format!("f{i}")),
                    10.0,
                    t((round * 10 + i) as f64),
                );
            }
            lru.flush_lru(100.0, None);
            lru.evict(100.0, None);
        }
        assert!(lru.is_empty());
        // The arena never grew past one round's worth of live blocks.
        assert!(
            lru.arena.len() <= 20,
            "arena grew to {} slots",
            lru.arena.len()
        );
        lru.check_invariants().unwrap();
    }

    #[test]
    fn cached_per_file_reports_every_file() {
        let mut lru = LruLists::new();
        lru.add_clean("f1".into(), 100.0, t(1.0));
        lru.add_dirty("f2".into(), 50.0, t(2.0));
        lru.add_clean("f1".into(), 25.0, t(3.0));
        let map = lru.cached_per_file();
        approx(*map.get(&"f1".into()).unwrap(), 125.0);
        approx(*map.get(&"f2".into()).unwrap(), 50.0);
        assert_eq!(map.len(), 2);
        // The zero-clone iterator reports the same totals.
        let sum: f64 = lru.per_file_cached().map(|(_, v)| v).sum();
        approx(sum, 175.0);
    }

    #[test]
    fn read_cache_total_is_conserved() {
        // Reading cached data must never change the total amount cached.
        let mut lru = LruLists::new();
        let f: FileId = "f".into();
        lru.add_clean(f.clone(), 100.0, t(1.0));
        lru.add_dirty(f.clone(), 60.0, t(2.0));
        lru.add_clean("other".into(), 40.0, t(3.0));
        let before = lru.total_cached();
        lru.read_cached(&f, 130.0, t(4.0));
        approx(lru.total_cached(), before);
        approx(lru.total_dirty(), 60.0);
        lru.check_invariants().unwrap();
    }

    #[test]
    fn clock_second_chance_spares_referenced_blocks() {
        let mut lru = LruLists::with_policy(EvictionPolicy::Clock);
        let f: FileId = "hot".into();
        lru.add_clean(f.clone(), 100.0, t(1.0));
        // The re-read keeps the block on tier 0 but sets its reference bit.
        lru.read_cached(&f, 100.0, t(2.0));
        approx(lru.active_bytes(), 0.0); // CLOCK has no protected tier
        lru.add_clean("cold".into(), 100.0, t(3.0));
        // Reclaim: the referenced block is spared once, the cold one goes,
        // even though the hot block is the least recently used candidate.
        let evicted = lru.evict(100.0, None);
        approx(evicted, 100.0);
        approx(lru.cached_amount(&f), 100.0);
        approx(lru.cached_amount(&"cold".into()), 0.0);
        // Its bit was consumed: the next reclaim takes it.
        let evicted = lru.evict(100.0, None);
        approx(evicted, 100.0);
        approx(lru.cached_amount(&f), 0.0);
        lru.check_invariants().unwrap();
    }

    #[test]
    fn two_q_ghost_hit_readmits_to_the_main_list() {
        let mut lru = LruLists::with_policy(EvictionPolicy::TwoQ);
        let f: FileId = "reread".into();
        lru.add_clean(f.clone(), 100.0, t(1.0));
        assert_eq!(lru.tier_blocks(0).count(), 1); // probationary A1in
        lru.evict(100.0, None); // evicted from A1in -> remembered as a ghost
        approx(lru.cached_amount(&f), 0.0);
        // The ghost hit routes the re-fetched data straight to Am (tier 1).
        lru.add_clean(f.clone(), 100.0, t(2.0));
        assert_eq!(lru.tier_blocks(0).count(), 0);
        assert_eq!(lru.tier_blocks(1).count(), 1);
        // A1in drains before Am: the newer cold block is reclaimed first.
        lru.add_clean("cold".into(), 100.0, t(3.0));
        let evicted = lru.evict(100.0, None);
        approx(evicted, 100.0);
        approx(lru.cached_amount(&f), 100.0);
        approx(lru.cached_amount(&"cold".into()), 0.0);
        lru.check_invariants().unwrap();
    }

    #[test]
    fn mglru_reclaims_older_generations_first() {
        let mut lru = LruLists::with_policy(EvictionPolicy::MglruGen);
        let a: FileId = "a".into();
        let b: FileId = "b".into();
        lru.add_clean(a.clone(), 100.0, t(1.0));
        lru.read_cached(&a, 100.0, t(2.0));
        lru.add_clean(b.clone(), 100.0, t(3.0));
        // `a` was promoted before `b` was inserted, but its generation is
        // older than `b`'s insert generation relative to the rotated ring:
        // reclaim drains `a` before touching `b`.
        let evicted = lru.evict(100.0, None);
        approx(evicted, 100.0);
        approx(lru.cached_amount(&a), 0.0);
        approx(lru.cached_amount(&b), 100.0);
        lru.check_invariants().unwrap();
    }

    #[test]
    fn every_policy_keeps_invariants_under_a_mixed_workload() {
        for policy in EvictionPolicy::ALL {
            let mut lru = LruLists::with_policy(policy);
            assert_eq!(lru.policy_kind(), policy);
            let mut clock = 0.0;
            for round in 0..30 {
                clock += 1.0;
                let f = FileId::new(format!("f{}", round % 5));
                match round % 6 {
                    0 | 1 => lru.add_clean(f, 50.0, t(clock)),
                    2 => lru.add_dirty(f, 30.0, t(clock)),
                    3 => {
                        lru.read_cached(&f, 40.0, t(clock));
                    }
                    4 => {
                        lru.flush_lru(60.0, None);
                    }
                    _ => {
                        lru.evict(80.0, None);
                    }
                }
                lru.check_invariants()
                    .unwrap_or_else(|e| panic!("{policy}: {e}"));
            }
        }
    }

    #[test]
    fn out_of_order_insert_lands_at_sorted_position() {
        let mut lru = LruLists::new();
        // Force a demotion whose last_access falls between two inactive
        // blocks: the demoted block must land between them.
        let f: FileId = "old".into();
        lru.add_clean(f.clone(), 10.0, t(1.0));
        lru.read_cached(&f, 10.0, t(2.0)); // active, la = 2
        lru.add_clean("mid".into(), 1.0, t(1.5));
        lru.add_clean("new".into(), 1.0, t(3.0));
        lru.balance();
        let la: Vec<f64> = lru
            .inactive_blocks()
            .map(|b| b.last_access.as_secs())
            .collect();
        let mut sorted = la.clone();
        sorted.sort_by(f64::total_cmp);
        assert_eq!(la, sorted, "inactive list must stay sorted: {la:?}");
        lru.check_invariants().unwrap();
    }
}
