//! The two-list LRU structure used by the simulation model (paper §III-A-1).
//!
//! As in the Linux kernel, cached data lives either on the *inactive* list
//! (accessed once) or the *active* list (accessed more than once). Both lists
//! are ordered by last access time, earliest first, so the least recently used
//! data is always at the front. The active list is kept at most twice the
//! size of the inactive list by demoting its least recently used blocks.
//!
//! # Complexity
//!
//! The lists are [`VecDeque`]s ordered by `last_access`, and every byte
//! aggregate the I/O controller polls on its hot path is maintained
//! *incrementally* instead of being recomputed by scanning:
//!
//! * [`LruLists::total_cached`], [`LruLists::total_dirty`],
//!   [`LruLists::inactive_bytes`], [`LruLists::active_bytes`] and
//!   [`LruLists::evictable`] are **O(1)** reads of per-list counters;
//! * [`LruLists::cached_amount`] and [`LruLists::dirty_amount`] are **O(1)**
//!   expected-time lookups in a per-file [`HashMap`];
//! * [`LruLists::cached_per_file`] is **O(F log F)** in the number of files
//!   with cached data, independent of the number of blocks;
//! * insertion keeps the common append/pop-front pattern **O(1)**: a block
//!   accessed "now" goes to the back in constant time, and out-of-order
//!   inserts (demotions) use a binary search plus an O(min(i, n−i)) shift;
//! * [`LruLists::balance`] decides each demotion in **O(1)** (plus the
//!   insertion shift for the demoted block) instead of
//!   re-summing both lists per demotion.
//!
//! # Invariants maintained by the incremental counters
//!
//! For each list, `agg.bytes` / `agg.dirty` equal the sum of sizes / dirty
//! sizes of its blocks; for each file, `FileBytes { cached, dirty,
//! inactive_bytes, inactive_clean, blocks }` equal the same sums restricted to
//! that file (and `blocks` its exact block count, used to drop empty entries).
//! Every mutation — insert, remove, in-place flush, in-place shrink, split,
//! demotion — updates the counters by the exact delta. In debug builds every
//! public mutator re-derives all counters from a full scan (`recompute_*`
//! oracles) and `debug_assert!`s agreement, so the O(1) readers can never
//! silently drift from the scan-based truth.
//!
//! All byte amounts are `f64`; a small epsilon absorbs floating-point dust
//! when blocks are split by partial reads, flushes and evictions.

use std::collections::{BTreeMap, HashMap, VecDeque};

use des::SimTime;

use crate::block::{DataBlock, FileId};

/// Bytes below which two amounts are considered equal.
pub const EPSILON: f64 = 1e-6;

/// Which of the two LRU lists a block resides on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ListKind {
    /// The inactive list (data accessed once, candidates for eviction).
    Inactive,
    /// The active list (data accessed more than once, protected).
    Active,
}

/// Incrementally maintained byte totals of one list.
#[derive(Debug, Default, Clone, Copy)]
struct ListAgg {
    /// Sum of the sizes of all blocks on the list.
    bytes: f64,
    /// Sum of the sizes of the dirty blocks on the list.
    dirty: f64,
}

impl ListAgg {
    fn add(&mut self, size: f64, dirty: bool) {
        self.bytes += size;
        if dirty {
            self.dirty += size;
        }
    }

    fn sub(&mut self, size: f64, dirty: bool) {
        self.bytes = (self.bytes - size).max(0.0);
        if dirty {
            self.dirty = (self.dirty - size).max(0.0);
        }
    }
}

/// Incrementally maintained byte totals of one file.
#[derive(Debug, Default, Clone, Copy)]
struct FileBytes {
    /// Cached bytes of the file (both lists, clean + dirty).
    cached: f64,
    /// Dirty bytes of the file (both lists).
    dirty: f64,
    /// Bytes of the file on the inactive list (clean + dirty).
    inactive_bytes: f64,
    /// Clean bytes of the file on the inactive list (its evictable share).
    inactive_clean: f64,
    /// Exact number of blocks of the file across both lists. Used to decide
    /// when the entry can be dropped without relying on float comparisons.
    blocks: usize,
}

/// The pair of LRU lists holding all cached data blocks of one host.
#[derive(Debug, Default, Clone)]
pub struct LruLists {
    inactive: VecDeque<DataBlock>,
    active: VecDeque<DataBlock>,
    inactive_agg: ListAgg,
    active_agg: ListAgg,
    per_file: HashMap<FileId, FileBytes>,
}

impl LruLists {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of blocks across both lists.
    pub fn block_count(&self) -> usize {
        self.inactive.len() + self.active.len()
    }

    /// Whether the cache holds no data at all.
    pub fn is_empty(&self) -> bool {
        self.inactive.is_empty() && self.active.is_empty()
    }

    /// Total cached bytes (clean + dirty, both lists). O(1).
    pub fn total_cached(&self) -> f64 {
        self.inactive_agg.bytes + self.active_agg.bytes
    }

    /// Total dirty bytes (both lists). O(1).
    pub fn total_dirty(&self) -> f64 {
        self.inactive_agg.dirty + self.active_agg.dirty
    }

    /// Bytes of the inactive list. O(1).
    pub fn inactive_bytes(&self) -> f64 {
        self.inactive_agg.bytes
    }

    /// Bytes of the active list. O(1).
    pub fn active_bytes(&self) -> f64 {
        self.active_agg.bytes
    }

    /// Cached bytes belonging to `file`. O(1) expected.
    pub fn cached_amount(&self, file: &FileId) -> f64 {
        self.per_file.get(file).map_or(0.0, |f| f.cached)
    }

    /// Dirty bytes belonging to `file`. O(1) expected.
    pub fn dirty_amount(&self, file: &FileId) -> f64 {
        self.per_file.get(file).map_or(0.0, |f| f.dirty)
    }

    /// Cached bytes per file (used to reproduce Fig. 4c). O(F log F) in the
    /// number of files, independent of the number of blocks; the returned keys
    /// share the interned file names (cloning a [`FileId`] is a refcount
    /// bump, not a string copy).
    pub fn cached_per_file(&self) -> BTreeMap<FileId, f64> {
        self.per_file
            .iter()
            .filter(|(_, f)| f.cached > EPSILON)
            .map(|(k, f)| (k.clone(), f.cached))
            .collect()
    }

    /// Iterates over the per-file cached amounts without cloning any key.
    /// Iteration order is unspecified; use [`LruLists::cached_per_file`] for a
    /// sorted snapshot.
    pub fn per_file_cached(&self) -> impl Iterator<Item = (&FileId, f64)> {
        self.per_file
            .iter()
            .filter(|(_, f)| f.cached > EPSILON)
            .map(|(k, f)| (k, f.cached))
    }

    /// Clean bytes on the inactive list that [`LruLists::evict`] could remove,
    /// optionally excluding one file. O(1).
    pub fn evictable(&self, exclude: Option<&FileId>) -> f64 {
        let total = (self.inactive_agg.bytes - self.inactive_agg.dirty).max(0.0);
        let excluded = exclude
            .and_then(|f| self.per_file.get(f))
            .map_or(0.0, |f| f.inactive_clean);
        (total - excluded).max(0.0)
    }

    /// Iterates over all blocks, inactive list first, LRU first.
    pub fn iter_all(&self) -> impl Iterator<Item = &DataBlock> {
        self.inactive.iter().chain(self.active.iter())
    }

    /// Blocks of the inactive list, LRU first.
    pub fn inactive_blocks(&self) -> &VecDeque<DataBlock> {
        &self.inactive
    }

    /// Blocks of the active list, LRU first.
    pub fn active_blocks(&self) -> &VecDeque<DataBlock> {
        &self.active
    }

    /// Records a block joining `kind` in the aggregates. Call before (or
    /// after) physically inserting the block; the counters only need its
    /// metadata.
    fn agg_insert(&mut self, kind: ListKind, block: &DataBlock) {
        let agg = match kind {
            ListKind::Inactive => &mut self.inactive_agg,
            ListKind::Active => &mut self.active_agg,
        };
        agg.add(block.size, block.dirty);
        let f = self.per_file.entry(block.file.clone()).or_default();
        f.cached += block.size;
        f.blocks += 1;
        if block.dirty {
            f.dirty += block.size;
        }
        if kind == ListKind::Inactive {
            f.inactive_bytes += block.size;
            if !block.dirty {
                f.inactive_clean += block.size;
            }
        }
    }

    /// Records a block leaving `kind` in the aggregates.
    fn agg_remove(&mut self, kind: ListKind, block: &DataBlock) {
        let agg = match kind {
            ListKind::Inactive => &mut self.inactive_agg,
            ListKind::Active => &mut self.active_agg,
        };
        agg.sub(block.size, block.dirty);
        if let Some(f) = self.per_file.get_mut(&block.file) {
            f.cached = (f.cached - block.size).max(0.0);
            f.blocks = f.blocks.saturating_sub(1);
            if block.dirty {
                f.dirty = (f.dirty - block.size).max(0.0);
            }
            if kind == ListKind::Inactive {
                f.inactive_bytes = (f.inactive_bytes - block.size).max(0.0);
                if !block.dirty {
                    f.inactive_clean = (f.inactive_clean - block.size).max(0.0);
                }
            }
            if f.blocks == 0 {
                self.per_file.remove(&block.file);
            }
        }
    }

    /// Records `amount` bytes of a dirty block on `kind` turning clean in
    /// place (a flush). Sizes do not change, only dirtiness.
    fn agg_clean_in_place(&mut self, kind: ListKind, file: &FileId, amount: f64) {
        let agg = match kind {
            ListKind::Inactive => &mut self.inactive_agg,
            ListKind::Active => &mut self.active_agg,
        };
        agg.dirty = (agg.dirty - amount).max(0.0);
        if let Some(f) = self.per_file.get_mut(file) {
            f.dirty = (f.dirty - amount).max(0.0);
            if kind == ListKind::Inactive {
                f.inactive_clean += amount;
            }
        }
    }

    /// Records a block on `kind` shrinking by `amount` bytes in place with
    /// unchanged block count (a partial eviction or a partial take; the split
    /// head is accounted separately when it is re-inserted).
    fn agg_shrink(&mut self, kind: ListKind, file: &FileId, amount: f64, dirty: bool) {
        let agg = match kind {
            ListKind::Inactive => &mut self.inactive_agg,
            ListKind::Active => &mut self.active_agg,
        };
        agg.sub(amount, dirty);
        if let Some(f) = self.per_file.get_mut(file) {
            f.cached = (f.cached - amount).max(0.0);
            if dirty {
                f.dirty = (f.dirty - amount).max(0.0);
            }
            if kind == ListKind::Inactive {
                f.inactive_bytes = (f.inactive_bytes - amount).max(0.0);
                if !dirty {
                    f.inactive_clean = (f.inactive_clean - amount).max(0.0);
                }
            }
        }
    }

    /// Records one extra block of `file` appearing without any byte change
    /// (a block split whose both halves stay in the lists).
    fn agg_note_split(&mut self, file: &FileId) {
        if let Some(f) = self.per_file.get_mut(file) {
            f.blocks += 1;
        }
    }

    /// Inserts `block` keeping `list` sorted by last access. Appends in O(1)
    /// when the block is the most recently accessed (the common case);
    /// otherwise binary-searches for the insertion point.
    fn insert_sorted(list: &mut VecDeque<DataBlock>, block: DataBlock) {
        match list.back() {
            None => list.push_back(block),
            Some(b) if b.last_access <= block.last_access => list.push_back(block),
            _ => {
                let pos = list.partition_point(|b| b.last_access <= block.last_access);
                list.insert(pos, block);
            }
        }
    }

    /// Adds a clean block (data just read from disk) to the inactive list.
    pub fn add_clean(&mut self, file: FileId, size: f64, now: SimTime) {
        if size <= EPSILON {
            return;
        }
        let block = DataBlock::clean(file, size, now);
        self.agg_insert(ListKind::Inactive, &block);
        Self::insert_sorted(&mut self.inactive, block);
        self.balance();
        self.debug_validate();
    }

    /// Adds a dirty block (data just written by the application) to the
    /// inactive list.
    pub fn add_dirty(&mut self, file: FileId, size: f64, now: SimTime) {
        if size <= EPSILON {
            return;
        }
        let block = DataBlock::dirty(file, size, now);
        self.agg_insert(ListKind::Inactive, &block);
        Self::insert_sorted(&mut self.inactive, block);
        self.balance();
        self.debug_validate();
    }

    /// Simulates a read of `amount` cached bytes of `file` (paper §III-A-2):
    /// blocks are consumed from the inactive list first, then the active list,
    /// least recently used first; clean portions are merged into a single new
    /// block appended to the active list; dirty portions move to the active
    /// list individually, preserving their entry time. Returns the number of
    /// bytes that were actually cached (which may be less than `amount`).
    pub fn read_cached(&mut self, file: &FileId, amount: f64, now: SimTime) -> f64 {
        if amount <= EPSILON || self.cached_amount(file) <= EPSILON {
            return 0.0;
        }
        let taken = self.take_for_read(file, amount);
        let mut clean_total = 0.0;
        let mut read_total = 0.0;
        for blk in taken {
            read_total += blk.size;
            if blk.dirty {
                let promoted = DataBlock {
                    file: blk.file,
                    size: blk.size,
                    entry_time: blk.entry_time,
                    last_access: now,
                    dirty: true,
                };
                self.agg_insert(ListKind::Active, &promoted);
                Self::insert_sorted(&mut self.active, promoted);
            } else {
                clean_total += blk.size;
            }
        }
        if clean_total > EPSILON {
            let merged = DataBlock::clean(file.clone(), clean_total, now);
            self.agg_insert(ListKind::Active, &merged);
            Self::insert_sorted(&mut self.active, merged);
        }
        self.debug_validate();
        read_total
    }

    /// Removes up to `amount` bytes of `file` from the lists, inactive first,
    /// LRU first, splitting the last block if needed.
    fn take_for_read(&mut self, file: &FileId, amount: f64) -> Vec<DataBlock> {
        let mut taken = Vec::new();
        let mut remaining = amount;
        for kind in [ListKind::Inactive, ListKind::Active] {
            // Skip (or stop scanning) a list once the file has no bytes left
            // on it; without this, a read of a small file would still walk
            // every block of the other files.
            let on_list = self.per_file.get(file).map_or(0.0, |f| match kind {
                ListKind::Inactive => f.inactive_bytes,
                ListKind::Active => f.cached - f.inactive_bytes,
            });
            if on_list <= EPSILON {
                continue;
            }
            let mut from_list = 0.0;
            let list_len = match kind {
                ListKind::Inactive => self.inactive.len(),
                ListKind::Active => self.active.len(),
            };
            let mut i = 0;
            while i < list_len && remaining > EPSILON && from_list < on_list - EPSILON {
                let list = match kind {
                    ListKind::Inactive => &mut self.inactive,
                    ListKind::Active => &mut self.active,
                };
                if i >= list.len() {
                    break;
                }
                if &list[i].file == file {
                    if list[i].size <= remaining + EPSILON {
                        let blk = list.remove(i).expect("index checked above");
                        remaining -= blk.size;
                        from_list += blk.size;
                        self.agg_remove(kind, &blk);
                        taken.push(blk);
                        continue;
                    } else {
                        let head = list[i].split_off(remaining);
                        // The head leaves the list (it is re-accounted when
                        // the promotion re-inserts it); the remainder keeps
                        // the block count.
                        self.agg_shrink(kind, file, head.size, head.dirty);
                        taken.push(head);
                        remaining = 0.0;
                        break;
                    }
                }
                i += 1;
            }
        }
        taken
    }

    /// Marks up to `amount` bytes of dirty data as clean, least recently used
    /// first (inactive list before active list), optionally excluding one
    /// file. The last block is split if it only needs to be partially flushed.
    /// Returns the number of bytes flushed; the caller is responsible for
    /// simulating the corresponding disk write time.
    ///
    /// Calling with a non-positive `amount` is a no-op (paper Algorithm 2:
    /// "when called with negative arguments, `flush` and `evict` simply
    /// return").
    pub fn flush_lru(&mut self, amount: f64, exclude: Option<&FileId>) -> f64 {
        if amount <= EPSILON || self.total_dirty() <= EPSILON {
            return 0.0;
        }
        let mut flushed = 0.0;
        for kind in [ListKind::Inactive, ListKind::Active] {
            let list_dirty = match kind {
                ListKind::Inactive => self.inactive_agg.dirty,
                ListKind::Active => self.active_agg.dirty,
            };
            if list_dirty <= EPSILON {
                continue;
            }
            let mut i = 0;
            loop {
                let list = match kind {
                    ListKind::Inactive => &mut self.inactive,
                    ListKind::Active => &mut self.active,
                };
                if i >= list.len() {
                    break;
                }
                if flushed >= amount - EPSILON {
                    self.debug_validate();
                    return flushed;
                }
                let is_candidate = list[i].dirty && exclude.is_none_or(|f| &list[i].file != f);
                if is_candidate {
                    let need = amount - flushed;
                    if list[i].size <= need + EPSILON {
                        list[i].dirty = false;
                        let size = list[i].size;
                        let file = list[i].file.clone();
                        flushed += size;
                        self.agg_clean_in_place(kind, &file, size);
                    } else {
                        let mut head = list[i].split_off(need);
                        head.dirty = false;
                        flushed += head.size;
                        let file = head.file.clone();
                        let size = head.size;
                        // Same last-access time as the remainder: insert right
                        // before it to keep the list ordered. Splitting a
                        // dirty block into a clean head plus a dirty remainder
                        // leaves total bytes unchanged: only the dirty share
                        // and the block count move.
                        list.insert(i, head);
                        self.agg_clean_in_place(kind, &file, size);
                        self.agg_note_split(&file);
                        self.debug_validate();
                        return flushed;
                    }
                }
                i += 1;
            }
        }
        self.debug_validate();
        flushed
    }

    /// Removes up to `amount` bytes of clean data from the inactive list,
    /// least recently used first, optionally excluding one file. The last
    /// block is split if it only needs to be partially evicted. Returns the
    /// number of bytes evicted. Non-positive amounts are a no-op.
    pub fn evict(&mut self, amount: f64, exclude: Option<&FileId>) -> f64 {
        if amount <= EPSILON {
            return 0.0;
        }
        // Memory pressure is when the kernel refills the inactive list from
        // the active list; re-balance before reclaiming so long-idle active
        // data becomes evictable.
        self.balance();
        let available = self.evictable(exclude);
        if available <= EPSILON {
            return 0.0;
        }
        let target = amount.min(available);
        let mut evicted = 0.0;
        let mut i = 0;
        while i < self.inactive.len() && evicted < target - EPSILON {
            let is_candidate =
                !self.inactive[i].dirty && exclude.is_none_or(|f| &self.inactive[i].file != f);
            if is_candidate {
                let need = amount - evicted;
                if self.inactive[i].size <= need + EPSILON {
                    let blk = self.inactive.remove(i).expect("index checked above");
                    evicted += blk.size;
                    self.agg_remove(ListKind::Inactive, &blk);
                    continue;
                } else {
                    self.inactive[i].size -= need;
                    let file = self.inactive[i].file.clone();
                    self.agg_shrink(ListKind::Inactive, &file, need, false);
                    evicted += need;
                    break;
                }
            }
            i += 1;
        }
        self.debug_validate();
        evicted
    }

    /// Marks every dirty block older than `expire` seconds as clean and
    /// returns the total number of bytes to be written back (paper
    /// Algorithm 1, the periodical flusher).
    pub fn flush_expired(&mut self, now: SimTime, expire: f64) -> f64 {
        if self.total_dirty() <= EPSILON {
            return 0.0;
        }
        let mut flushed = 0.0;
        for kind in [ListKind::Inactive, ListKind::Active] {
            let mut cleaned: Vec<(FileId, f64)> = Vec::new();
            let list = match kind {
                ListKind::Inactive => &mut self.inactive,
                ListKind::Active => &mut self.active,
            };
            for blk in list.iter_mut() {
                if blk.is_expired(now, expire) {
                    blk.dirty = false;
                    flushed += blk.size;
                    cleaned.push((blk.file.clone(), blk.size));
                }
            }
            for (file, size) in cleaned {
                self.agg_clean_in_place(kind, &file, size);
            }
        }
        self.debug_validate();
        flushed
    }

    /// Removes every block belonging to `file` (used when a simulated file is
    /// deleted). Returns the number of bytes removed.
    pub fn invalidate_file(&mut self, file: &FileId) -> f64 {
        if self.per_file.remove(file).is_none() {
            return 0.0;
        }
        let mut removed = 0.0;
        for (list, agg) in [
            (&mut self.inactive, &mut self.inactive_agg),
            (&mut self.active, &mut self.active_agg),
        ] {
            list.retain(|b| {
                if &b.file == file {
                    removed += b.size;
                    agg.sub(b.size, b.dirty);
                    false
                } else {
                    true
                }
            });
        }
        self.debug_validate();
        removed
    }

    /// Re-balances the lists so the active list holds at most twice the bytes
    /// of the inactive list, by demoting least recently used active blocks
    /// (paper §III-A-1, after Gorman's description of the kernel behaviour).
    /// The demotion decision is O(1) — the byte totals are incremental, so no
    /// list is re-summed per demoted block — and re-inserting the demoted
    /// block costs a binary search plus an O(min(i, n−i)) element shift.
    pub fn balance(&mut self) {
        while !self.active.is_empty()
            && self.active_agg.bytes > 2.0 * self.inactive_agg.bytes + EPSILON
        {
            let demoted = self.active.pop_front().expect("checked non-empty");
            self.agg_remove(ListKind::Active, &demoted);
            self.agg_insert(ListKind::Inactive, &demoted);
            Self::insert_sorted(&mut self.inactive, demoted);
        }
    }

    /// Checks the structural invariants of the lists; used by tests and
    /// property-based tests.
    ///
    /// Invariants: every block has positive size, both lists are sorted by
    /// last access time, and the active list is at most twice the inactive
    /// list (up to one block of slack, since balancing moves whole blocks).
    pub fn check_invariants(&self) -> Result<(), String> {
        for (name, list) in [("inactive", &self.inactive), ("active", &self.active)] {
            for (a, b) in list.iter().zip(list.iter().skip(1)) {
                if a.last_access > b.last_access {
                    return Err(format!("{name} list is not sorted by last access"));
                }
            }
            if let Some(b) = list.iter().find(|b| b.size <= 0.0) {
                return Err(format!(
                    "{name} list contains a non-positive block ({})",
                    b.size
                ));
            }
        }
        self.check_aggregates()?;
        Ok(())
    }

    /// Verifies every incremental aggregate against a full-scan recomputation
    /// (the oracles the O(1) readers replaced). O(n); used by
    /// [`LruLists::check_invariants`], the randomized consistency tests and
    /// the `debug_assert!` validation after every mutation.
    pub fn check_aggregates(&self) -> Result<(), String> {
        fn close(a: f64, b: f64) -> bool {
            (a - b).abs() <= EPSILON + 1e-9 * b.abs()
        }
        for (name, agg, recomputed) in [
            (
                "inactive",
                self.inactive_agg,
                self.recompute_list_agg(ListKind::Inactive),
            ),
            (
                "active",
                self.active_agg,
                self.recompute_list_agg(ListKind::Active),
            ),
        ] {
            if !close(agg.bytes, recomputed.bytes) {
                return Err(format!(
                    "{name} bytes counter {} != recomputed {}",
                    agg.bytes, recomputed.bytes
                ));
            }
            if !close(agg.dirty, recomputed.dirty) {
                return Err(format!(
                    "{name} dirty counter {} != recomputed {}",
                    agg.dirty, recomputed.dirty
                ));
            }
        }
        let scan = self.recompute_per_file();
        if scan.len() != self.per_file.len() {
            return Err(format!(
                "per-file map has {} entries, scan found {}",
                self.per_file.len(),
                scan.len()
            ));
        }
        for (file, expected) in &scan {
            let Some(actual) = self.per_file.get(file) else {
                return Err(format!("file {file} missing from per-file map"));
            };
            if actual.blocks != expected.blocks {
                return Err(format!(
                    "file {file}: block counter {} != scan {}",
                    actual.blocks, expected.blocks
                ));
            }
            for (what, a, b) in [
                ("cached", actual.cached, expected.cached),
                ("dirty", actual.dirty, expected.dirty),
                (
                    "inactive_bytes",
                    actual.inactive_bytes,
                    expected.inactive_bytes,
                ),
                (
                    "inactive_clean",
                    actual.inactive_clean,
                    expected.inactive_clean,
                ),
            ] {
                if !close(a, b) {
                    return Err(format!("file {file}: {what} counter {a} != scan {b}"));
                }
            }
        }
        Ok(())
    }

    /// Scan-based oracle for one list's aggregates.
    fn recompute_list_agg(&self, kind: ListKind) -> ListAgg {
        let list = match kind {
            ListKind::Inactive => &self.inactive,
            ListKind::Active => &self.active,
        };
        let mut agg = ListAgg::default();
        for b in list {
            agg.add(b.size, b.dirty);
        }
        agg
    }

    /// Scan-based oracle for the per-file aggregates.
    fn recompute_per_file(&self) -> HashMap<FileId, FileBytes> {
        let mut map: HashMap<FileId, FileBytes> = HashMap::new();
        for (kind, list) in [
            (ListKind::Inactive, &self.inactive),
            (ListKind::Active, &self.active),
        ] {
            for b in list {
                let f = map.entry(b.file.clone()).or_default();
                f.cached += b.size;
                f.blocks += 1;
                if b.dirty {
                    f.dirty += b.size;
                }
                if kind == ListKind::Inactive {
                    f.inactive_bytes += b.size;
                    if !b.dirty {
                        f.inactive_clean += b.size;
                    }
                }
            }
        }
        map
    }

    /// Cross-checks the incremental counters against the scan oracles after
    /// every mutation in debug builds; compiles to nothing in release builds
    /// so the hot paths stay O(1).
    #[inline]
    fn debug_validate(&self) {
        #[cfg(debug_assertions)]
        {
            if let Err(e) = self.check_aggregates() {
                panic!("incremental aggregates diverged from scan oracle: {e}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "expected {b}, got {a}");
    }

    #[test]
    fn new_cache_is_empty() {
        let lru = LruLists::new();
        assert!(lru.is_empty());
        assert_eq!(lru.total_cached(), 0.0);
        assert_eq!(lru.total_dirty(), 0.0);
        assert_eq!(lru.block_count(), 0);
    }

    #[test]
    fn first_access_goes_to_inactive_list() {
        let mut lru = LruLists::new();
        lru.add_clean("f1".into(), 100.0, t(1.0));
        lru.add_dirty("f2".into(), 50.0, t(2.0));
        assert_eq!(lru.inactive_blocks().len(), 2);
        assert_eq!(lru.active_blocks().len(), 0);
        approx(lru.total_cached(), 150.0);
        approx(lru.total_dirty(), 50.0);
        approx(lru.cached_amount(&"f1".into()), 100.0);
        approx(lru.dirty_amount(&"f2".into()), 50.0);
        lru.check_invariants().unwrap();
    }

    #[test]
    fn zero_sized_additions_are_ignored() {
        let mut lru = LruLists::new();
        lru.add_clean("f".into(), 0.0, t(1.0));
        lru.add_dirty("f".into(), -5.0, t(1.0));
        assert!(lru.is_empty());
    }

    #[test]
    fn second_access_promotes_to_active_and_merges_clean_blocks() {
        let mut lru = LruLists::new();
        let f: FileId = "f1".into();
        lru.add_clean(f.clone(), 100.0, t(1.0));
        lru.add_clean(f.clone(), 200.0, t(2.0));
        let read = lru.read_cached(&f, 300.0, t(3.0));
        approx(read, 300.0);
        // Both clean blocks were merged into a single active block.
        assert_eq!(lru.inactive_blocks().len(), 0);
        assert_eq!(lru.active_blocks().len(), 1);
        approx(lru.active_blocks()[0].size, 300.0);
        assert!(!lru.active_blocks()[0].dirty);
        assert_eq!(lru.active_blocks()[0].last_access, t(3.0));
        lru.check_invariants().unwrap();
    }

    #[test]
    fn dirty_blocks_move_to_active_individually_preserving_entry_time() {
        let mut lru = LruLists::new();
        let f: FileId = "f1".into();
        lru.add_dirty(f.clone(), 100.0, t(1.0));
        lru.add_dirty(f.clone(), 100.0, t(2.0));
        let read = lru.read_cached(&f, 200.0, t(5.0));
        approx(read, 200.0);
        assert_eq!(lru.active_blocks().len(), 2);
        let entries: Vec<f64> = lru
            .active_blocks()
            .iter()
            .map(|b| b.entry_time.as_secs())
            .collect();
        assert_eq!(entries, vec![1.0, 2.0]);
        assert!(lru.active_blocks().iter().all(|b| b.dirty));
        assert!(lru.active_blocks().iter().all(|b| b.last_access == t(5.0)));
    }

    #[test]
    fn partial_read_splits_a_block() {
        let mut lru = LruLists::new();
        let f: FileId = "f1".into();
        lru.add_clean(f.clone(), 100.0, t(1.0));
        let read = lru.read_cached(&f, 30.0, t(2.0));
        approx(read, 30.0);
        // 70 bytes remain on the inactive list, 30 were promoted.
        approx(lru.inactive_bytes(), 70.0);
        approx(lru.active_bytes(), 30.0);
        approx(lru.cached_amount(&f), 100.0);
        lru.check_invariants().unwrap();
    }

    #[test]
    fn read_cached_returns_only_what_is_cached() {
        let mut lru = LruLists::new();
        let f: FileId = "f1".into();
        lru.add_clean(f.clone(), 50.0, t(1.0));
        let read = lru.read_cached(&f, 200.0, t(2.0));
        approx(read, 50.0);
    }

    #[test]
    fn read_cached_ignores_other_files() {
        let mut lru = LruLists::new();
        lru.add_clean("f1".into(), 50.0, t(1.0));
        lru.add_clean("f2".into(), 80.0, t(2.0));
        let read = lru.read_cached(&"f1".into(), 100.0, t(3.0));
        approx(read, 50.0);
        approx(lru.cached_amount(&"f2".into()), 80.0);
        // f2 stayed on the inactive list.
        assert_eq!(lru.inactive_blocks().len(), 1);
        assert_eq!(lru.inactive_blocks()[0].file, "f2".into());
    }

    #[test]
    fn inactive_list_is_consumed_before_active_list() {
        let mut lru = LruLists::new();
        let f: FileId = "f1".into();
        // One block on the active list (accessed twice) ...
        lru.add_clean(f.clone(), 100.0, t(1.0));
        lru.read_cached(&f, 100.0, t(2.0));
        assert_eq!(lru.active_blocks().len(), 1);
        // ... and a newer block on the inactive list.
        lru.add_clean(f.clone(), 100.0, t(3.0));
        // Reading 100 bytes must consume the inactive block, not the active one.
        let read = lru.read_cached(&f, 100.0, t(4.0));
        approx(read, 100.0);
        // The active list now holds the original block plus the newly promoted
        // one; the inactive list may hold demoted blocks from balancing but no
        // block with last_access == 3.0.
        assert!(lru.iter_all().all(|b| b.last_access != t(3.0)));
    }

    #[test]
    fn flush_marks_lru_dirty_blocks_clean_in_order() {
        let mut lru = LruLists::new();
        lru.add_dirty("f1".into(), 100.0, t(1.0));
        lru.add_dirty("f2".into(), 100.0, t(2.0));
        let flushed = lru.flush_lru(120.0, None);
        approx(flushed, 120.0);
        approx(lru.total_dirty(), 80.0);
        // The oldest block (f1) is fully clean, f2 was split.
        approx(lru.dirty_amount(&"f1".into()), 0.0);
        approx(lru.dirty_amount(&"f2".into()), 80.0);
        assert_eq!(lru.block_count(), 3);
        lru.check_invariants().unwrap();
    }

    #[test]
    fn flush_with_nonpositive_amount_is_noop() {
        let mut lru = LruLists::new();
        lru.add_dirty("f1".into(), 100.0, t(1.0));
        assert_eq!(lru.flush_lru(0.0, None), 0.0);
        assert_eq!(lru.flush_lru(-50.0, None), 0.0);
        approx(lru.total_dirty(), 100.0);
    }

    #[test]
    fn flush_excludes_requested_file() {
        let mut lru = LruLists::new();
        lru.add_dirty("f1".into(), 100.0, t(1.0));
        lru.add_dirty("f2".into(), 100.0, t(2.0));
        let f1: FileId = "f1".into();
        let flushed = lru.flush_lru(150.0, Some(&f1));
        approx(flushed, 100.0); // only f2 was eligible
        approx(lru.dirty_amount(&f1), 100.0);
        approx(lru.dirty_amount(&"f2".into()), 0.0);
    }

    #[test]
    fn flush_caps_at_available_dirty_data() {
        let mut lru = LruLists::new();
        lru.add_dirty("f1".into(), 60.0, t(1.0));
        lru.add_clean("f2".into(), 500.0, t(2.0));
        let flushed = lru.flush_lru(1000.0, None);
        approx(flushed, 60.0);
        approx(lru.total_dirty(), 0.0);
    }

    #[test]
    fn evict_removes_clean_inactive_blocks_lru_first() {
        let mut lru = LruLists::new();
        lru.add_clean("f1".into(), 100.0, t(1.0));
        lru.add_clean("f2".into(), 100.0, t(2.0));
        lru.add_dirty("f3".into(), 100.0, t(3.0));
        let evicted = lru.evict(150.0, None);
        approx(evicted, 150.0);
        approx(lru.cached_amount(&"f1".into()), 0.0);
        approx(lru.cached_amount(&"f2".into()), 50.0);
        // Dirty data is never evicted.
        approx(lru.cached_amount(&"f3".into()), 100.0);
        lru.check_invariants().unwrap();
    }

    #[test]
    fn evict_skips_dirty_and_excluded_and_active_blocks() {
        let mut lru = LruLists::new();
        let f1: FileId = "f1".into();
        // Promote f1 to the active list.
        lru.add_clean(f1.clone(), 100.0, t(1.0));
        lru.read_cached(&f1, 100.0, t(2.0));
        lru.add_dirty("f2".into(), 100.0, t(3.0));
        lru.add_clean("f3".into(), 100.0, t(4.0));
        let f3: FileId = "f3".into();
        // Only f3 is clean+inactive, and it is excluded -> nothing to evict.
        let evicted = lru.evict(300.0, Some(&f3));
        approx(evicted, 0.0);
        // Without the exclusion, only f3 can be evicted.
        let evicted = lru.evict(300.0, None);
        approx(evicted, 100.0);
        approx(lru.total_cached(), 200.0);
    }

    #[test]
    fn evict_with_nonpositive_amount_is_noop() {
        let mut lru = LruLists::new();
        lru.add_clean("f1".into(), 100.0, t(1.0));
        assert_eq!(lru.evict(-10.0, None), 0.0);
        approx(lru.total_cached(), 100.0);
    }

    #[test]
    fn evictable_counts_only_clean_inactive_blocks() {
        let mut lru = LruLists::new();
        let f1: FileId = "f1".into();
        lru.add_clean(f1.clone(), 100.0, t(1.0));
        lru.read_cached(&f1, 100.0, t(2.0)); // now active
        lru.add_clean("f2".into(), 70.0, t(3.0));
        lru.add_dirty("f3".into(), 30.0, t(4.0));
        // Balancing may demote the f1 block back to inactive (active must stay
        // <= 2x inactive); account for whichever split results.
        let evictable = lru.evictable(None);
        let clean_inactive: f64 = lru
            .inactive_blocks()
            .iter()
            .filter(|b| !b.dirty)
            .map(|b| b.size)
            .sum();
        approx(evictable, clean_inactive);
        let f2: FileId = "f2".into();
        assert!(lru.evictable(Some(&f2)) <= evictable - 70.0 + EPSILON);
    }

    #[test]
    fn flush_expired_only_touches_old_dirty_blocks() {
        let mut lru = LruLists::new();
        lru.add_dirty("f1".into(), 100.0, t(0.0));
        lru.add_dirty("f2".into(), 100.0, t(20.0));
        lru.add_clean("f3".into(), 100.0, t(0.0));
        let flushed = lru.flush_expired(t(35.0), 30.0);
        approx(flushed, 100.0); // only f1 is older than 30 s
        approx(lru.total_dirty(), 100.0);
        // A later pass flushes f2 once it expires.
        let flushed = lru.flush_expired(t(55.0), 30.0);
        approx(flushed, 100.0);
        approx(lru.total_dirty(), 0.0);
    }

    #[test]
    fn balance_demotes_lru_active_blocks() {
        let mut lru = LruLists::new();
        let f: FileId = "f".into();
        // Promote three separate dirty blocks (dirty blocks are not merged),
        // so the active list holds 300 bytes in three blocks.
        for i in 0..3 {
            lru.add_dirty(f.clone(), 100.0, t(i as f64));
        }
        lru.read_cached(&f, 300.0, t(10.0));
        assert_eq!(lru.active_blocks().len(), 3);
        approx(lru.inactive_bytes(), 0.0);
        // Balancing demotes least recently used active blocks until the
        // active list is at most twice the inactive list.
        lru.balance();
        assert!(lru.active_bytes() <= 2.0 * lru.inactive_bytes() + EPSILON);
        approx(lru.total_cached(), 300.0);
        lru.check_invariants().unwrap();
        // Eviction triggers the same re-balancing internally.
        let mut lru2 = LruLists::new();
        lru2.add_clean(f.clone(), 100.0, t(0.0));
        lru2.read_cached(&f, 100.0, t(1.0)); // now 100 bytes active, 0 inactive
        let evicted = lru2.evict(50.0, None);
        approx(evicted, 50.0);
        lru2.check_invariants().unwrap();
    }

    #[test]
    fn invalidate_file_removes_all_its_blocks() {
        let mut lru = LruLists::new();
        lru.add_clean("f1".into(), 100.0, t(1.0));
        lru.add_dirty("f1".into(), 50.0, t(2.0));
        lru.add_clean("f2".into(), 30.0, t(3.0));
        let removed = lru.invalidate_file(&"f1".into());
        approx(removed, 150.0);
        approx(lru.total_cached(), 30.0);
        approx(lru.cached_amount(&"f1".into()), 0.0);
    }

    #[test]
    fn cached_per_file_reports_every_file() {
        let mut lru = LruLists::new();
        lru.add_clean("f1".into(), 100.0, t(1.0));
        lru.add_dirty("f2".into(), 50.0, t(2.0));
        lru.add_clean("f1".into(), 25.0, t(3.0));
        let map = lru.cached_per_file();
        approx(*map.get(&"f1".into()).unwrap(), 125.0);
        approx(*map.get(&"f2".into()).unwrap(), 50.0);
        assert_eq!(map.len(), 2);
        // The zero-clone iterator reports the same totals.
        let sum: f64 = lru.per_file_cached().map(|(_, v)| v).sum();
        approx(sum, 175.0);
    }

    #[test]
    fn read_cache_total_is_conserved() {
        // Reading cached data must never change the total amount cached.
        let mut lru = LruLists::new();
        let f: FileId = "f".into();
        lru.add_clean(f.clone(), 100.0, t(1.0));
        lru.add_dirty(f.clone(), 60.0, t(2.0));
        lru.add_clean("other".into(), 40.0, t(3.0));
        let before = lru.total_cached();
        lru.read_cached(&f, 130.0, t(4.0));
        approx(lru.total_cached(), before);
        approx(lru.total_dirty(), 60.0);
        lru.check_invariants().unwrap();
    }
}
