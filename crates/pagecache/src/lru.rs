//! The two-list LRU structure used by the simulation model (paper §III-A-1).
//!
//! As in the Linux kernel, cached data lives either on the *inactive* list
//! (accessed once) or the *active* list (accessed more than once). Both lists
//! are ordered by last access time, earliest first, so the least recently used
//! data is always at the front. The active list is kept at most twice the
//! size of the inactive list by demoting its least recently used blocks.
//!
//! All byte amounts are `f64`; a small epsilon absorbs floating-point dust
//! when blocks are split by partial reads, flushes and evictions.

use std::collections::BTreeMap;

use des::SimTime;

use crate::block::{DataBlock, FileId};

/// Bytes below which two amounts are considered equal.
pub const EPSILON: f64 = 1e-6;

/// Which of the two LRU lists a block resides on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ListKind {
    /// The inactive list (data accessed once, candidates for eviction).
    Inactive,
    /// The active list (data accessed more than once, protected).
    Active,
}

/// The pair of LRU lists holding all cached data blocks of one host.
#[derive(Debug, Default, Clone)]
pub struct LruLists {
    inactive: Vec<DataBlock>,
    active: Vec<DataBlock>,
}

impl LruLists {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of blocks across both lists.
    pub fn block_count(&self) -> usize {
        self.inactive.len() + self.active.len()
    }

    /// Whether the cache holds no data at all.
    pub fn is_empty(&self) -> bool {
        self.inactive.is_empty() && self.active.is_empty()
    }

    /// Total cached bytes (clean + dirty, both lists).
    pub fn total_cached(&self) -> f64 {
        self.iter_all().map(|b| b.size).sum()
    }

    /// Total dirty bytes (both lists).
    pub fn total_dirty(&self) -> f64 {
        self.iter_all().filter(|b| b.dirty).map(|b| b.size).sum()
    }

    /// Bytes of the inactive list.
    pub fn inactive_bytes(&self) -> f64 {
        self.inactive.iter().map(|b| b.size).sum()
    }

    /// Bytes of the active list.
    pub fn active_bytes(&self) -> f64 {
        self.active.iter().map(|b| b.size).sum()
    }

    /// Cached bytes belonging to `file`.
    pub fn cached_amount(&self, file: &FileId) -> f64 {
        self.iter_all()
            .filter(|b| &b.file == file)
            .map(|b| b.size)
            .sum()
    }

    /// Dirty bytes belonging to `file`.
    pub fn dirty_amount(&self, file: &FileId) -> f64 {
        self.iter_all()
            .filter(|b| b.dirty && &b.file == file)
            .map(|b| b.size)
            .sum()
    }

    /// Cached bytes per file (used to reproduce Fig. 4c).
    pub fn cached_per_file(&self) -> BTreeMap<FileId, f64> {
        let mut map = BTreeMap::new();
        for b in self.iter_all() {
            *map.entry(b.file.clone()).or_insert(0.0) += b.size;
        }
        map
    }

    /// Clean bytes on the inactive list that [`LruLists::evict`] could remove,
    /// optionally excluding one file.
    pub fn evictable(&self, exclude: Option<&FileId>) -> f64 {
        self.inactive
            .iter()
            .filter(|b| !b.dirty && exclude.map_or(true, |f| &b.file != f))
            .map(|b| b.size)
            .sum()
    }

    /// Iterates over all blocks, inactive list first, LRU first.
    pub fn iter_all(&self) -> impl Iterator<Item = &DataBlock> {
        self.inactive.iter().chain(self.active.iter())
    }

    /// Blocks of the inactive list, LRU first.
    pub fn inactive_blocks(&self) -> &[DataBlock] {
        &self.inactive
    }

    /// Blocks of the active list, LRU first.
    pub fn active_blocks(&self) -> &[DataBlock] {
        &self.active
    }

    fn insert_sorted(list: &mut Vec<DataBlock>, block: DataBlock) {
        // Blocks are almost always inserted at (or near) the end: scan from the
        // back for the first element not later than the new block.
        let pos = list
            .iter()
            .rposition(|b| b.last_access <= block.last_access)
            .map(|p| p + 1)
            .unwrap_or(0);
        list.insert(pos, block);
    }

    /// Adds a clean block (data just read from disk) to the inactive list.
    pub fn add_clean(&mut self, file: FileId, size: f64, now: SimTime) {
        if size <= EPSILON {
            return;
        }
        Self::insert_sorted(&mut self.inactive, DataBlock::clean(file, size, now));
        self.balance();
    }

    /// Adds a dirty block (data just written by the application) to the
    /// inactive list.
    pub fn add_dirty(&mut self, file: FileId, size: f64, now: SimTime) {
        if size <= EPSILON {
            return;
        }
        Self::insert_sorted(&mut self.inactive, DataBlock::dirty(file, size, now));
        self.balance();
    }

    /// Simulates a read of `amount` cached bytes of `file` (paper §III-A-2):
    /// blocks are consumed from the inactive list first, then the active list,
    /// least recently used first; clean portions are merged into a single new
    /// block appended to the active list; dirty portions move to the active
    /// list individually, preserving their entry time. Returns the number of
    /// bytes that were actually cached (which may be less than `amount`).
    pub fn read_cached(&mut self, file: &FileId, amount: f64, now: SimTime) -> f64 {
        if amount <= EPSILON {
            return 0.0;
        }
        let taken = self.take_for_read(file, amount);
        let mut clean_total = 0.0;
        let mut read_total = 0.0;
        for blk in taken {
            read_total += blk.size;
            if blk.dirty {
                Self::insert_sorted(
                    &mut self.active,
                    DataBlock {
                        file: blk.file,
                        size: blk.size,
                        entry_time: blk.entry_time,
                        last_access: now,
                        dirty: true,
                    },
                );
            } else {
                clean_total += blk.size;
            }
        }
        if clean_total > EPSILON {
            Self::insert_sorted(&mut self.active, DataBlock::clean(file.clone(), clean_total, now));
        }
        read_total
    }

    /// Removes up to `amount` bytes of `file` from the lists, inactive first,
    /// LRU first, splitting the last block if needed.
    fn take_for_read(&mut self, file: &FileId, amount: f64) -> Vec<DataBlock> {
        let mut taken = Vec::new();
        let mut remaining = amount;
        for list in [&mut self.inactive, &mut self.active] {
            let mut i = 0;
            while i < list.len() && remaining > EPSILON {
                if &list[i].file == file {
                    if list[i].size <= remaining + EPSILON {
                        let blk = list.remove(i);
                        remaining -= blk.size;
                        taken.push(blk);
                        continue;
                    } else {
                        let head = list[i].split_off(remaining);
                        taken.push(head);
                        remaining = 0.0;
                        break;
                    }
                }
                i += 1;
            }
        }
        taken
    }

    /// Marks up to `amount` bytes of dirty data as clean, least recently used
    /// first (inactive list before active list), optionally excluding one
    /// file. The last block is split if it only needs to be partially flushed.
    /// Returns the number of bytes flushed; the caller is responsible for
    /// simulating the corresponding disk write time.
    ///
    /// Calling with a non-positive `amount` is a no-op (paper Algorithm 2:
    /// "when called with negative arguments, `flush` and `evict` simply
    /// return").
    pub fn flush_lru(&mut self, amount: f64, exclude: Option<&FileId>) -> f64 {
        if amount <= EPSILON {
            return 0.0;
        }
        let mut flushed = 0.0;
        for list in [&mut self.inactive, &mut self.active] {
            let mut i = 0;
            while i < list.len() {
                if flushed >= amount - EPSILON {
                    return flushed;
                }
                let is_candidate =
                    list[i].dirty && exclude.map_or(true, |f| &list[i].file != f);
                if is_candidate {
                    let need = amount - flushed;
                    if list[i].size <= need + EPSILON {
                        list[i].dirty = false;
                        flushed += list[i].size;
                    } else {
                        let mut head = list[i].split_off(need);
                        head.dirty = false;
                        flushed += head.size;
                        // Same last-access time as the remainder: insert right
                        // before it to keep the list ordered.
                        list.insert(i, head);
                        return flushed;
                    }
                }
                i += 1;
            }
        }
        flushed
    }

    /// Removes up to `amount` bytes of clean data from the inactive list,
    /// least recently used first, optionally excluding one file. The last
    /// block is split if it only needs to be partially evicted. Returns the
    /// number of bytes evicted. Non-positive amounts are a no-op.
    pub fn evict(&mut self, amount: f64, exclude: Option<&FileId>) -> f64 {
        if amount <= EPSILON {
            return 0.0;
        }
        // Memory pressure is when the kernel refills the inactive list from
        // the active list; re-balance before reclaiming so long-idle active
        // data becomes evictable.
        self.balance();
        let mut evicted = 0.0;
        let mut i = 0;
        while i < self.inactive.len() && evicted < amount - EPSILON {
            let is_candidate =
                !self.inactive[i].dirty && exclude.map_or(true, |f| &self.inactive[i].file != f);
            if is_candidate {
                let need = amount - evicted;
                if self.inactive[i].size <= need + EPSILON {
                    evicted += self.inactive[i].size;
                    self.inactive.remove(i);
                    continue;
                } else {
                    self.inactive[i].size -= need;
                    evicted += need;
                    break;
                }
            }
            i += 1;
        }
        evicted
    }

    /// Marks every dirty block older than `expire` seconds as clean and
    /// returns the total number of bytes to be written back (paper
    /// Algorithm 1, the periodical flusher).
    pub fn flush_expired(&mut self, now: SimTime, expire: f64) -> f64 {
        let mut flushed = 0.0;
        for list in [&mut self.inactive, &mut self.active] {
            for blk in list.iter_mut() {
                if blk.is_expired(now, expire) {
                    blk.dirty = false;
                    flushed += blk.size;
                }
            }
        }
        flushed
    }

    /// Removes every block belonging to `file` (used when a simulated file is
    /// deleted). Returns the number of bytes removed.
    pub fn invalidate_file(&mut self, file: &FileId) -> f64 {
        let mut removed = 0.0;
        for list in [&mut self.inactive, &mut self.active] {
            list.retain(|b| {
                if &b.file == file {
                    removed += b.size;
                    false
                } else {
                    true
                }
            });
        }
        removed
    }

    /// Re-balances the lists so the active list holds at most twice the bytes
    /// of the inactive list, by demoting least recently used active blocks
    /// (paper §III-A-1, after Gorman's description of the kernel behaviour).
    pub fn balance(&mut self) {
        while !self.active.is_empty() && self.active_bytes() > 2.0 * self.inactive_bytes() + EPSILON
        {
            let demoted = self.active.remove(0);
            Self::insert_sorted(&mut self.inactive, demoted);
        }
    }

    /// Checks the structural invariants of the lists; used by tests and
    /// property-based tests.
    ///
    /// Invariants: every block has positive size, both lists are sorted by
    /// last access time, and the active list is at most twice the inactive
    /// list (up to one block of slack, since balancing moves whole blocks).
    pub fn check_invariants(&self) -> Result<(), String> {
        for (name, list) in [("inactive", &self.inactive), ("active", &self.active)] {
            for w in list.windows(2) {
                if w[0].last_access > w[1].last_access {
                    return Err(format!("{name} list is not sorted by last access"));
                }
            }
            if let Some(b) = list.iter().find(|b| b.size <= 0.0) {
                return Err(format!("{name} list contains a non-positive block ({})", b.size));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "expected {b}, got {a}");
    }

    #[test]
    fn new_cache_is_empty() {
        let lru = LruLists::new();
        assert!(lru.is_empty());
        assert_eq!(lru.total_cached(), 0.0);
        assert_eq!(lru.total_dirty(), 0.0);
        assert_eq!(lru.block_count(), 0);
    }

    #[test]
    fn first_access_goes_to_inactive_list() {
        let mut lru = LruLists::new();
        lru.add_clean("f1".into(), 100.0, t(1.0));
        lru.add_dirty("f2".into(), 50.0, t(2.0));
        assert_eq!(lru.inactive_blocks().len(), 2);
        assert_eq!(lru.active_blocks().len(), 0);
        approx(lru.total_cached(), 150.0);
        approx(lru.total_dirty(), 50.0);
        approx(lru.cached_amount(&"f1".into()), 100.0);
        approx(lru.dirty_amount(&"f2".into()), 50.0);
        lru.check_invariants().unwrap();
    }

    #[test]
    fn zero_sized_additions_are_ignored() {
        let mut lru = LruLists::new();
        lru.add_clean("f".into(), 0.0, t(1.0));
        lru.add_dirty("f".into(), -5.0, t(1.0));
        assert!(lru.is_empty());
    }

    #[test]
    fn second_access_promotes_to_active_and_merges_clean_blocks() {
        let mut lru = LruLists::new();
        let f: FileId = "f1".into();
        lru.add_clean(f.clone(), 100.0, t(1.0));
        lru.add_clean(f.clone(), 200.0, t(2.0));
        let read = lru.read_cached(&f, 300.0, t(3.0));
        approx(read, 300.0);
        // Both clean blocks were merged into a single active block.
        assert_eq!(lru.inactive_blocks().len(), 0);
        assert_eq!(lru.active_blocks().len(), 1);
        approx(lru.active_blocks()[0].size, 300.0);
        assert!(!lru.active_blocks()[0].dirty);
        assert_eq!(lru.active_blocks()[0].last_access, t(3.0));
        lru.check_invariants().unwrap();
    }

    #[test]
    fn dirty_blocks_move_to_active_individually_preserving_entry_time() {
        let mut lru = LruLists::new();
        let f: FileId = "f1".into();
        lru.add_dirty(f.clone(), 100.0, t(1.0));
        lru.add_dirty(f.clone(), 100.0, t(2.0));
        let read = lru.read_cached(&f, 200.0, t(5.0));
        approx(read, 200.0);
        assert_eq!(lru.active_blocks().len(), 2);
        let entries: Vec<f64> = lru
            .active_blocks()
            .iter()
            .map(|b| b.entry_time.as_secs())
            .collect();
        assert_eq!(entries, vec![1.0, 2.0]);
        assert!(lru.active_blocks().iter().all(|b| b.dirty));
        assert!(lru
            .active_blocks()
            .iter()
            .all(|b| b.last_access == t(5.0)));
    }

    #[test]
    fn partial_read_splits_a_block() {
        let mut lru = LruLists::new();
        let f: FileId = "f1".into();
        lru.add_clean(f.clone(), 100.0, t(1.0));
        let read = lru.read_cached(&f, 30.0, t(2.0));
        approx(read, 30.0);
        // 70 bytes remain on the inactive list, 30 were promoted.
        approx(lru.inactive_bytes(), 70.0);
        approx(lru.active_bytes(), 30.0);
        approx(lru.cached_amount(&f), 100.0);
        lru.check_invariants().unwrap();
    }

    #[test]
    fn read_cached_returns_only_what_is_cached() {
        let mut lru = LruLists::new();
        let f: FileId = "f1".into();
        lru.add_clean(f.clone(), 50.0, t(1.0));
        let read = lru.read_cached(&f, 200.0, t(2.0));
        approx(read, 50.0);
    }

    #[test]
    fn read_cached_ignores_other_files() {
        let mut lru = LruLists::new();
        lru.add_clean("f1".into(), 50.0, t(1.0));
        lru.add_clean("f2".into(), 80.0, t(2.0));
        let read = lru.read_cached(&"f1".into(), 100.0, t(3.0));
        approx(read, 50.0);
        approx(lru.cached_amount(&"f2".into()), 80.0);
        // f2 stayed on the inactive list.
        assert_eq!(lru.inactive_blocks().len(), 1);
        assert_eq!(lru.inactive_blocks()[0].file, "f2".into());
    }

    #[test]
    fn inactive_list_is_consumed_before_active_list() {
        let mut lru = LruLists::new();
        let f: FileId = "f1".into();
        // One block on the active list (accessed twice) ...
        lru.add_clean(f.clone(), 100.0, t(1.0));
        lru.read_cached(&f, 100.0, t(2.0));
        assert_eq!(lru.active_blocks().len(), 1);
        // ... and a newer block on the inactive list.
        lru.add_clean(f.clone(), 100.0, t(3.0));
        // Reading 100 bytes must consume the inactive block, not the active one.
        let read = lru.read_cached(&f, 100.0, t(4.0));
        approx(read, 100.0);
        // The active list now holds the original block plus the newly promoted
        // one; the inactive list may hold demoted blocks from balancing but no
        // block with last_access == 3.0.
        assert!(lru
            .iter_all()
            .all(|b| b.last_access != t(3.0)));
    }

    #[test]
    fn flush_marks_lru_dirty_blocks_clean_in_order() {
        let mut lru = LruLists::new();
        lru.add_dirty("f1".into(), 100.0, t(1.0));
        lru.add_dirty("f2".into(), 100.0, t(2.0));
        let flushed = lru.flush_lru(120.0, None);
        approx(flushed, 120.0);
        approx(lru.total_dirty(), 80.0);
        // The oldest block (f1) is fully clean, f2 was split.
        approx(lru.dirty_amount(&"f1".into()), 0.0);
        approx(lru.dirty_amount(&"f2".into()), 80.0);
        assert_eq!(lru.block_count(), 3);
        lru.check_invariants().unwrap();
    }

    #[test]
    fn flush_with_nonpositive_amount_is_noop() {
        let mut lru = LruLists::new();
        lru.add_dirty("f1".into(), 100.0, t(1.0));
        assert_eq!(lru.flush_lru(0.0, None), 0.0);
        assert_eq!(lru.flush_lru(-50.0, None), 0.0);
        approx(lru.total_dirty(), 100.0);
    }

    #[test]
    fn flush_excludes_requested_file() {
        let mut lru = LruLists::new();
        lru.add_dirty("f1".into(), 100.0, t(1.0));
        lru.add_dirty("f2".into(), 100.0, t(2.0));
        let f1: FileId = "f1".into();
        let flushed = lru.flush_lru(150.0, Some(&f1));
        approx(flushed, 100.0); // only f2 was eligible
        approx(lru.dirty_amount(&f1), 100.0);
        approx(lru.dirty_amount(&"f2".into()), 0.0);
    }

    #[test]
    fn flush_caps_at_available_dirty_data() {
        let mut lru = LruLists::new();
        lru.add_dirty("f1".into(), 60.0, t(1.0));
        lru.add_clean("f2".into(), 500.0, t(2.0));
        let flushed = lru.flush_lru(1000.0, None);
        approx(flushed, 60.0);
        approx(lru.total_dirty(), 0.0);
    }

    #[test]
    fn evict_removes_clean_inactive_blocks_lru_first() {
        let mut lru = LruLists::new();
        lru.add_clean("f1".into(), 100.0, t(1.0));
        lru.add_clean("f2".into(), 100.0, t(2.0));
        lru.add_dirty("f3".into(), 100.0, t(3.0));
        let evicted = lru.evict(150.0, None);
        approx(evicted, 150.0);
        approx(lru.cached_amount(&"f1".into()), 0.0);
        approx(lru.cached_amount(&"f2".into()), 50.0);
        // Dirty data is never evicted.
        approx(lru.cached_amount(&"f3".into()), 100.0);
        lru.check_invariants().unwrap();
    }

    #[test]
    fn evict_skips_dirty_and_excluded_and_active_blocks() {
        let mut lru = LruLists::new();
        let f1: FileId = "f1".into();
        // Promote f1 to the active list.
        lru.add_clean(f1.clone(), 100.0, t(1.0));
        lru.read_cached(&f1, 100.0, t(2.0));
        lru.add_dirty("f2".into(), 100.0, t(3.0));
        lru.add_clean("f3".into(), 100.0, t(4.0));
        let f3: FileId = "f3".into();
        // Only f3 is clean+inactive, and it is excluded -> nothing to evict.
        let evicted = lru.evict(300.0, Some(&f3));
        approx(evicted, 0.0);
        // Without the exclusion, only f3 can be evicted.
        let evicted = lru.evict(300.0, None);
        approx(evicted, 100.0);
        approx(lru.total_cached(), 200.0);
    }

    #[test]
    fn evict_with_nonpositive_amount_is_noop() {
        let mut lru = LruLists::new();
        lru.add_clean("f1".into(), 100.0, t(1.0));
        assert_eq!(lru.evict(-10.0, None), 0.0);
        approx(lru.total_cached(), 100.0);
    }

    #[test]
    fn evictable_counts_only_clean_inactive_blocks() {
        let mut lru = LruLists::new();
        let f1: FileId = "f1".into();
        lru.add_clean(f1.clone(), 100.0, t(1.0));
        lru.read_cached(&f1, 100.0, t(2.0)); // now active
        lru.add_clean("f2".into(), 70.0, t(3.0));
        lru.add_dirty("f3".into(), 30.0, t(4.0));
        // Balancing may demote the f1 block back to inactive (active must stay
        // <= 2x inactive); account for whichever split results.
        let evictable = lru.evictable(None);
        let clean_inactive: f64 = lru
            .inactive_blocks()
            .iter()
            .filter(|b| !b.dirty)
            .map(|b| b.size)
            .sum();
        approx(evictable, clean_inactive);
        let f2: FileId = "f2".into();
        assert!(lru.evictable(Some(&f2)) <= evictable - 70.0 + EPSILON);
    }

    #[test]
    fn flush_expired_only_touches_old_dirty_blocks() {
        let mut lru = LruLists::new();
        lru.add_dirty("f1".into(), 100.0, t(0.0));
        lru.add_dirty("f2".into(), 100.0, t(20.0));
        lru.add_clean("f3".into(), 100.0, t(0.0));
        let flushed = lru.flush_expired(t(35.0), 30.0);
        approx(flushed, 100.0); // only f1 is older than 30 s
        approx(lru.total_dirty(), 100.0);
        // A later pass flushes f2 once it expires.
        let flushed = lru.flush_expired(t(55.0), 30.0);
        approx(flushed, 100.0);
        approx(lru.total_dirty(), 0.0);
    }

    #[test]
    fn balance_demotes_lru_active_blocks() {
        let mut lru = LruLists::new();
        let f: FileId = "f".into();
        // Promote three separate dirty blocks (dirty blocks are not merged),
        // so the active list holds 300 bytes in three blocks.
        for i in 0..3 {
            lru.add_dirty(f.clone(), 100.0, t(i as f64));
        }
        lru.read_cached(&f, 300.0, t(10.0));
        assert_eq!(lru.active_blocks().len(), 3);
        approx(lru.inactive_bytes(), 0.0);
        // Balancing demotes least recently used active blocks until the
        // active list is at most twice the inactive list.
        lru.balance();
        assert!(lru.active_bytes() <= 2.0 * lru.inactive_bytes() + EPSILON);
        approx(lru.total_cached(), 300.0);
        lru.check_invariants().unwrap();
        // Eviction triggers the same re-balancing internally.
        let mut lru2 = LruLists::new();
        lru2.add_clean(f.clone(), 100.0, t(0.0));
        lru2.read_cached(&f, 100.0, t(1.0)); // now 100 bytes active, 0 inactive
        let evicted = lru2.evict(50.0, None);
        approx(evicted, 50.0);
        lru2.check_invariants().unwrap();
    }

    #[test]
    fn invalidate_file_removes_all_its_blocks() {
        let mut lru = LruLists::new();
        lru.add_clean("f1".into(), 100.0, t(1.0));
        lru.add_dirty("f1".into(), 50.0, t(2.0));
        lru.add_clean("f2".into(), 30.0, t(3.0));
        let removed = lru.invalidate_file(&"f1".into());
        approx(removed, 150.0);
        approx(lru.total_cached(), 30.0);
        approx(lru.cached_amount(&"f1".into()), 0.0);
    }

    #[test]
    fn cached_per_file_reports_every_file() {
        let mut lru = LruLists::new();
        lru.add_clean("f1".into(), 100.0, t(1.0));
        lru.add_dirty("f2".into(), 50.0, t(2.0));
        lru.add_clean("f1".into(), 25.0, t(3.0));
        let map = lru.cached_per_file();
        approx(*map.get(&"f1".into()).unwrap(), 125.0);
        approx(*map.get(&"f2".into()).unwrap(), 50.0);
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn read_cache_total_is_conserved() {
        // Reading cached data must never change the total amount cached.
        let mut lru = LruLists::new();
        let f: FileId = "f".into();
        lru.add_clean(f.clone(), 100.0, t(1.0));
        lru.add_dirty(f.clone(), 60.0, t(2.0));
        lru.add_clean("other".into(), 40.0, t(3.0));
        let before = lru.total_cached();
        lru.read_cached(&f, 130.0, t(4.0));
        approx(lru.total_cached(), before);
        approx(lru.total_dirty(), 60.0);
        lru.check_invariants().unwrap();
    }
}
