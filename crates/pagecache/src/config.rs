//! Page cache configuration parameters.
//!
//! Defaults follow the Linux kernel defaults used on the paper's cluster
//! (CentOS 8.1): `vm.dirty_ratio = 20 %`, `dirty_expire_centisecs = 3000`
//! (30 s), a 5 s writeback wakeup interval, and the classic active/inactive
//! 2-list eviction policy.

use crate::policy::EvictionPolicy;

/// How writes interact with the page cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteMode {
    /// Writes go to the page cache as dirty data and are flushed to disk
    /// asynchronously (default for local filesystems).
    WriteBack,
    /// Writes go to disk synchronously; the written data is then added to the
    /// cache as clean data (the paper's NFS server configuration).
    WriteThrough,
}

/// Tunable parameters of the simulated page cache.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageCacheConfig {
    /// Total RAM of the host, in bytes.
    pub total_memory: f64,
    /// Fraction of available memory that may hold dirty data before writers
    /// are throttled (`vm.dirty_ratio`).
    pub dirty_ratio: f64,
    /// Age in seconds after which dirty data is written back by the
    /// periodical flusher (`vm.dirty_expire_centisecs`).
    pub dirty_expire: f64,
    /// Wakeup interval of the periodical flusher, in seconds
    /// (`vm.dirty_writeback_centisecs`).
    pub flush_interval: f64,
    /// Write mode of the cache.
    pub write_mode: WriteMode,
    /// Replacement policy deciding which cached data is evicted first.
    pub eviction_policy: EvictionPolicy,
}

impl PageCacheConfig {
    /// Creates a configuration with kernel-default cache parameters and the
    /// given amount of RAM.
    pub fn with_memory(total_memory: f64) -> Self {
        PageCacheConfig {
            total_memory,
            dirty_ratio: 0.20,
            dirty_expire: 30.0,
            flush_interval: 5.0,
            write_mode: WriteMode::WriteBack,
            eviction_policy: EvictionPolicy::TwoList,
        }
    }

    /// Overrides the eviction policy.
    pub fn with_eviction_policy(mut self, policy: EvictionPolicy) -> Self {
        self.eviction_policy = policy;
        self
    }

    /// Switches the configuration to writethrough mode.
    pub fn writethrough(mut self) -> Self {
        self.write_mode = WriteMode::WriteThrough;
        self
    }

    /// Overrides the dirty ratio.
    pub fn with_dirty_ratio(mut self, ratio: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&ratio),
            "dirty ratio must be in [0, 1]"
        );
        self.dirty_ratio = ratio;
        self
    }

    /// Overrides the dirty expiration age (seconds).
    pub fn with_dirty_expire(mut self, secs: f64) -> Self {
        assert!(secs >= 0.0, "dirty expire must be non-negative");
        self.dirty_expire = secs;
        self
    }

    /// Overrides the periodical flusher interval (seconds).
    pub fn with_flush_interval(mut self, secs: f64) -> Self {
        assert!(secs > 0.0, "flush interval must be positive");
        self.flush_interval = secs;
        self
    }

    /// Validates the configuration, returning a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.total_memory > 0.0 && self.total_memory.is_finite()) {
            return Err(format!(
                "total memory must be positive, got {}",
                self.total_memory
            ));
        }
        if !(0.0..=1.0).contains(&self.dirty_ratio) {
            return Err(format!(
                "dirty ratio must be in [0, 1], got {}",
                self.dirty_ratio
            ));
        }
        if self.dirty_expire < 0.0 {
            return Err(format!(
                "dirty expire must be >= 0, got {}",
                self.dirty_expire
            ));
        }
        if self.flush_interval <= 0.0 {
            return Err(format!(
                "flush interval must be > 0, got {}",
                self.flush_interval
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_kernel_settings() {
        let cfg = PageCacheConfig::with_memory(1e9);
        assert_eq!(cfg.dirty_ratio, 0.20);
        assert_eq!(cfg.dirty_expire, 30.0);
        assert_eq!(cfg.flush_interval, 5.0);
        assert_eq!(cfg.write_mode, WriteMode::WriteBack);
        assert_eq!(cfg.eviction_policy, EvictionPolicy::TwoList);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn builder_methods() {
        let cfg = PageCacheConfig::with_memory(1e9)
            .writethrough()
            .with_dirty_ratio(0.4)
            .with_dirty_expire(10.0)
            .with_flush_interval(1.0)
            .with_eviction_policy(EvictionPolicy::TwoQ);
        assert_eq!(cfg.write_mode, WriteMode::WriteThrough);
        assert_eq!(cfg.dirty_ratio, 0.4);
        assert_eq!(cfg.dirty_expire, 10.0);
        assert_eq!(cfg.flush_interval, 1.0);
        assert_eq!(cfg.eviction_policy, EvictionPolicy::TwoQ);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_values() {
        let mut cfg = PageCacheConfig::with_memory(0.0);
        assert!(cfg.validate().is_err());
        cfg.total_memory = 1e9;
        cfg.dirty_ratio = 1.5;
        assert!(cfg.validate().is_err());
        cfg.dirty_ratio = 0.2;
        cfg.flush_interval = 0.0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "dirty ratio")]
    fn builder_panics_on_invalid_ratio() {
        let _ = PageCacheConfig::with_memory(1e9).with_dirty_ratio(2.0);
    }
}
