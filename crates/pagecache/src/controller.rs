//! The I/O Controller (paper §III-B).
//!
//! Applications read and write files chunk by chunk through the I/O
//! Controller, which orchestrates flushing, eviction, cache accesses and disk
//! accesses with the Memory Manager. File pages are assumed to be accessed in
//! a round-robin fashion: when a file is read, uncached data is read (from
//! disk) before cached data, and inactive-list data before active-list data
//! (paper Fig. 3).
//!
//! Every per-chunk step is cheap regardless of how many files are cached:
//! the headroom/evictable polls are O(1) aggregate reads, and the cache
//! read/flush calls walk only the target file's blocks / the dirty chains
//! (see the `lru` module), so interleaved multi-file workloads stay linear
//! in the data they move.

use des::SimContext;

use crate::block::FileId;
use crate::config::WriteMode;
use crate::lru::EPSILON;
use crate::manager::MemoryManager;
use crate::stats::IoOpStats;

/// Default chunk size used when the caller does not specify one (bytes).
pub const DEFAULT_CHUNK_SIZE: f64 = 100.0 * 1e6;

/// Clamps the byte range `[offset, offset + len)` to a file of `file_size`
/// bytes and returns `(start, amount)`. Negative offsets are clamped to 0,
/// `len = f64::INFINITY` means "to end of file", and ranges beyond the end
/// of the file are truncated (possibly to zero bytes). A `NaN` offset or
/// length describes no range at all and clamps to zero bytes (`NaN.max(0.0)`
/// is `0.0` in Rust, so without the explicit check a NaN offset would
/// silently read the *start* of the file). Shared by every filesystem
/// implementing offset-granular I/O.
pub fn clamp_io_range(offset: f64, len: f64, file_size: f64) -> (f64, f64) {
    if offset.is_nan() || len.is_nan() {
        return (0.0, 0.0);
    }
    let start = offset.max(0.0).min(file_size);
    let end = if len == f64::INFINITY {
        file_size
    } else {
        (start + len.max(0.0)).min(file_size)
    };
    (start, (end - start).max(0.0))
}

/// The I/O Controller of one host: the entry point applications use to read
/// and write files through the simulated page cache.
#[derive(Clone)]
pub struct IoController {
    ctx: SimContext,
    mm: MemoryManager,
    chunk_size: f64,
}

impl IoController {
    /// Creates a controller operating on the given Memory Manager with the
    /// default chunk size.
    pub fn new(ctx: &SimContext, mm: MemoryManager) -> Self {
        IoController {
            ctx: ctx.clone(),
            mm,
            chunk_size: DEFAULT_CHUNK_SIZE,
        }
    }

    /// Overrides the chunk size (bytes per request sent to the controller).
    pub fn with_chunk_size(mut self, chunk_size: f64) -> Self {
        assert!(chunk_size > 0.0, "chunk size must be positive");
        self.chunk_size = chunk_size;
        self
    }

    /// The chunk size used by [`IoController::read_file`] and
    /// [`IoController::write_file`].
    pub fn chunk_size(&self) -> f64 {
        self.chunk_size
    }

    /// The underlying Memory Manager.
    pub fn memory_manager(&self) -> &MemoryManager {
        &self.mm
    }

    /// Reads a whole file of `size` bytes, chunk by chunk (paper Algorithm 2),
    /// and accounts for one anonymous-memory copy of the data in the
    /// application. Returns aggregated statistics for the operation. A
    /// corollary of [`IoController::read_amount`] with `amount = size`.
    pub async fn read_file(&self, file: &FileId, size: f64) -> IoOpStats {
        self.read_amount(file, size, size).await
    }

    /// Reads `amount` bytes of a file of `file_size` bytes through the cache,
    /// chunk by chunk. The macroscopic model is amount-based: *which* offsets
    /// are requested does not matter, only how much of the file is cached
    /// (the round-robin access assumption of paper §III-B) — uncached data is
    /// served from disk first, so a partial re-read hits the cache for
    /// `min(amount, cached_amount)` bytes once the uncached share is
    /// exhausted. Callers translate `[offset, offset + len)` ranges into an
    /// amount with [`clamp_io_range`].
    pub async fn read_amount(&self, file: &FileId, file_size: f64, amount: f64) -> IoOpStats {
        let start = self.ctx.now();
        let mut stats = IoOpStats::default();
        let mut remaining = amount;
        while remaining > EPSILON {
            let chunk = remaining.min(self.chunk_size);
            let chunk_stats = self.read_chunk(file, file_size, chunk).await;
            stats.merge(&chunk_stats);
            remaining -= chunk;
        }
        stats.duration = self.ctx.now().duration_since(start);
        stats
    }

    /// Writes a whole file of `size` bytes, chunk by chunk (paper Algorithm 3
    /// in writeback mode, or the writethrough variant described in §III-B).
    /// A corollary of [`IoController::write_amount`].
    pub async fn write_file(&self, file: &FileId, size: f64) -> IoOpStats {
        self.write_amount(file, size).await
    }

    /// Writes `amount` bytes of `file` through the cache, chunk by chunk.
    /// Like reads, writes are amount-based in the macroscopic model: a range
    /// write of `len` bytes behaves identically wherever in the file it
    /// lands.
    pub async fn write_amount(&self, file: &FileId, amount: f64) -> IoOpStats {
        let start = self.ctx.now();
        let mut stats = IoOpStats::default();
        let mut remaining = amount;
        while remaining > EPSILON {
            let chunk = remaining.min(self.chunk_size);
            let chunk_stats = match self.mm.config().write_mode {
                WriteMode::WriteBack => self.write_chunk_writeback(file, chunk).await,
                WriteMode::WriteThrough => self.write_chunk_writethrough(file, chunk).await,
            };
            stats.merge(&chunk_stats);
            remaining -= chunk;
        }
        stats.duration = self.ctx.now().duration_since(start);
        stats
    }

    /// Flushes every dirty byte of one file to disk (`fsync`). The
    /// writeback happens synchronously at disk bandwidth; the per-file dirty
    /// state is located through the file's own chains, so the cost scales
    /// with the file's block count, not the cache population.
    pub async fn fsync(&self, file: &FileId) -> IoOpStats {
        let start = self.ctx.now();
        let flushed = self.mm.flush_file(file).await;
        IoOpStats {
            bytes_to_disk: flushed,
            duration: self.ctx.now().duration_since(start),
            ..IoOpStats::default()
        }
    }

    /// Flushes all dirty data of the host to disk (`sync`), least recently
    /// used first.
    pub async fn sync(&self) -> IoOpStats {
        let start = self.ctx.now();
        let flushed = self.mm.flush(self.mm.dirty(), None).await;
        IoOpStats {
            bytes_to_disk: flushed,
            duration: self.ctx.now().duration_since(start),
            ..IoOpStats::default()
        }
    }

    /// Reads one chunk (paper Algorithm 2).
    async fn read_chunk(&self, file: &FileId, file_size: f64, chunk: f64) -> IoOpStats {
        let start = self.ctx.now();
        let mut stats = IoOpStats::default();

        // Lines 7-9: how much must come from disk, how much from cache, and
        // how much memory the chunk needs (one copy in anonymous memory plus
        // the newly cached data). Under the round-robin access assumption the
        // uncached part of the file is `fs - mm.cached(fn)`.
        let file_uncached = (file_size - self.mm.cached_amount(file)).max(0.0);
        let disk_read = chunk.min(file_uncached);
        let cache_read = chunk - disk_read;
        let required_mem = chunk + disk_read;

        // Lines 10-11: make room by flushing dirty data, then evicting clean
        // data. Negative amounts are no-ops.
        let flush_amount = required_mem - self.mm.free_memory() - self.mm.evictable(Some(file));
        let flushed = self.mm.flush(flush_amount, Some(file)).await;
        stats.bytes_to_disk += flushed;
        let evict_amount = required_mem - self.mm.free_memory();
        self.mm.evict(evict_amount, Some(file));
        // Algorithm 2 assumes the file fits in memory. If it does not, the
        // exclusion above prevents reclaiming the file's own pages and the
        // cache would grow unbounded; fall back to unrestricted eviction,
        // which is what the kernel does under memory pressure.
        let still_missing = required_mem - self.mm.free_memory();
        if still_missing > EPSILON {
            self.mm.evict(still_missing, None);
        }

        // Lines 12-15: read uncached data from disk and add it to the cache.
        if disk_read > EPSILON {
            self.mm.disk().read(disk_read).await;
            self.mm.add_to_cache(file, disk_read);
            stats.bytes_from_disk += disk_read;
            stats.bytes_to_cache += disk_read;
        }
        // Lines 16-18: read cached data.
        if cache_read > EPSILON {
            let read = self.mm.read_from_cache(file, cache_read).await;
            stats.bytes_from_cache += read;
        }
        // Line 19: the application keeps a copy of the chunk in anonymous
        // memory.
        self.mm.use_anonymous_memory(chunk);

        stats.duration = self.ctx.now().duration_since(start);
        stats
    }

    /// Writes one chunk in writeback mode (paper Algorithm 3).
    async fn write_chunk_writeback(&self, file: &FileId, chunk: f64) -> IoOpStats {
        let start = self.ctx.now();
        let mut stats = IoOpStats::default();

        // Line 5: how much dirty data may still be produced.
        let remain_dirty = self.mm.dirty_headroom();
        let mut mem_amt = 0.0;
        if remain_dirty > EPSILON {
            // Lines 6-9: make room (if needed) and write to the cache.
            let evict_amount = chunk.min(remain_dirty) - self.mm.free_memory();
            self.mm.evict(evict_amount, None);
            mem_amt = chunk.min(remain_dirty).min(self.mm.free_memory());
            if mem_amt > EPSILON {
                self.mm.write_to_cache(file, mem_amt).await;
                stats.bytes_to_cache += mem_amt;
            }
        }

        // Lines 11-18: the dirty threshold was reached; repeatedly flush,
        // evict, and write the remaining data to the cache. This loop is the
        // macroscopic equivalent of `balance_dirty_pages` blocking the
        // writer, so the time it takes is reported as a throttle stall —
        // comparable with the kernel emulator's pacing/hard-throttle stalls.
        let stall_start = self.ctx.now();
        let mut remaining = chunk - mem_amt;
        while remaining > EPSILON {
            let flushed = self.mm.flush(chunk - mem_amt, None).await;
            stats.bytes_to_disk += flushed;
            self.mm.evict(chunk - mem_amt - self.mm.free_memory(), None);
            let to_cache = remaining.min(self.mm.free_memory());
            if to_cache > EPSILON {
                self.mm.write_to_cache(file, to_cache).await;
                stats.bytes_to_cache += to_cache;
                remaining -= to_cache;
            } else if flushed <= EPSILON {
                // Neither flushing nor eviction can make progress (everything
                // is anonymous or active). Degrade to a direct disk write for
                // the remainder so the simulation cannot livelock; the real
                // kernel would block the writer in balance_dirty_pages.
                self.mm.disk().write(remaining).await;
                self.mm
                    .add_to_cache(file, self.mm.free_memory().min(remaining));
                stats.bytes_to_disk += remaining;
                remaining = 0.0;
            }
        }
        stats.throttle_stall = self.ctx.now().duration_since(stall_start);

        stats.duration = self.ctx.now().duration_since(start);
        stats
    }

    /// Writes one chunk in writethrough mode (paper §III-B, last paragraph):
    /// the disk write is synchronous, then the written data is added to the
    /// cache (as clean data), evicting older cache entries if needed.
    async fn write_chunk_writethrough(&self, file: &FileId, chunk: f64) -> IoOpStats {
        let start = self.ctx.now();
        let mut stats = IoOpStats::default();
        self.mm.disk().write(chunk).await;
        stats.bytes_to_disk += chunk;
        self.mm.evict(chunk - self.mm.free_memory(), None);
        let to_cache = chunk.min(self.mm.free_memory());
        if to_cache > EPSILON {
            self.mm.add_to_cache(file, to_cache);
            stats.bytes_to_cache += to_cache;
        }
        stats.duration = self.ctx.now().duration_since(start);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PageCacheConfig;
    use des::Simulation;
    use storage_model::{units::MB, DeviceSpec, Disk, MemoryDevice};

    const MEM_BW: f64 = 1000.0 * 1e6; // 1000 MB/s
    const DISK_BW: f64 = 100.0 * 1e6; // 100 MB/s

    fn setup(total_memory: f64, mode: WriteMode) -> (Simulation, IoController) {
        let sim = Simulation::new();
        let ctx = sim.context();
        let memory = MemoryDevice::new(&ctx, DeviceSpec::symmetric(MEM_BW, 0.0, f64::INFINITY));
        let disk = Disk::new(
            &ctx,
            "disk0",
            DeviceSpec::symmetric(DISK_BW, 0.0, f64::INFINITY),
        );
        let mut cfg = PageCacheConfig::with_memory(total_memory);
        cfg.write_mode = mode;
        let mm = MemoryManager::new(&ctx, cfg, memory, disk);
        let io = IoController::new(&ctx, mm).with_chunk_size(100.0 * MB);
        (sim, io)
    }

    fn approx(a: f64, b: f64) {
        assert!(
            (a - b).abs() < 1e-6 * b.abs().max(1.0),
            "expected {b}, got {a}"
        );
    }

    fn approx_tol(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * b.abs().max(1.0),
            "expected {b}±{tol}, got {a}"
        );
    }

    #[test]
    fn cold_read_hits_disk_at_disk_bandwidth() {
        let (sim, io) = setup(10_000.0 * MB, WriteMode::WriteBack);
        let h = sim.spawn({
            let io = io.clone();
            async move { io.read_file(&"f".into(), 1000.0 * MB).await }
        });
        sim.run();
        let stats = h.try_take_result().unwrap();
        approx(stats.bytes_from_disk, 1000.0 * MB);
        approx(stats.bytes_from_cache, 0.0);
        approx(stats.duration, 10.0); // 1000 MB at 100 MB/s
                                      // The file is now fully cached and one anonymous copy is accounted.
        approx(io.memory_manager().cached_amount(&"f".into()), 1000.0 * MB);
        approx(io.memory_manager().anonymous(), 1000.0 * MB);
    }

    #[test]
    fn warm_read_hits_cache_at_memory_bandwidth() {
        let (sim, io) = setup(10_000.0 * MB, WriteMode::WriteBack);
        let h = sim.spawn({
            let io = io.clone();
            async move {
                io.read_file(&"f".into(), 1000.0 * MB).await;
                io.memory_manager().release_anonymous_memory(1000.0 * MB);
                io.read_file(&"f".into(), 1000.0 * MB).await
            }
        });
        sim.run();
        let stats = h.try_take_result().unwrap();
        approx(stats.bytes_from_cache, 1000.0 * MB);
        approx(stats.bytes_from_disk, 0.0);
        approx(stats.duration, 1.0); // 1000 MB at 1000 MB/s
        assert!((stats.cache_hit_ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn partially_cached_file_reads_uncached_part_from_disk() {
        let (sim, io) = setup(10_000.0 * MB, WriteMode::WriteBack);
        // Pre-populate 400 MB of the file in the cache.
        io.memory_manager().add_to_cache(&"f".into(), 400.0 * MB);
        let h = sim.spawn({
            let io = io.clone();
            async move { io.read_file(&"f".into(), 1000.0 * MB).await }
        });
        sim.run();
        let stats = h.try_take_result().unwrap();
        approx(stats.bytes_from_disk, 600.0 * MB);
        approx(stats.bytes_from_cache, 400.0 * MB);
        // 600 MB at 100 MB/s + 400 MB at 1000 MB/s
        approx(stats.duration, 6.4);
    }

    #[test]
    fn writeback_write_within_dirty_headroom_is_memory_speed() {
        let (sim, io) = setup(10_000.0 * MB, WriteMode::WriteBack);
        let h = sim.spawn({
            let io = io.clone();
            async move { io.write_file(&"f".into(), 1000.0 * MB).await }
        });
        sim.run();
        let stats = h.try_take_result().unwrap();
        approx(stats.bytes_to_cache, 1000.0 * MB);
        approx(stats.bytes_to_disk, 0.0);
        approx(stats.duration, 1.0); // memory bandwidth only
        approx(io.memory_manager().dirty(), 1000.0 * MB);
    }

    #[test]
    fn writeback_write_beyond_dirty_ratio_triggers_flushing() {
        // 1000 MB of RAM, dirty ratio 20 % => at most ~200 MB of dirty data.
        let (sim, io) = setup(1000.0 * MB, WriteMode::WriteBack);
        let h = sim.spawn({
            let io = io.clone();
            async move { io.write_file(&"f".into(), 600.0 * MB).await }
        });
        sim.run();
        let stats = h.try_take_result().unwrap();
        approx(stats.bytes_to_cache, 600.0 * MB);
        // At least 400 MB had to be flushed to disk synchronously.
        assert!(
            stats.bytes_to_disk >= 399.0 * MB,
            "flushed {}",
            stats.bytes_to_disk
        );
        // Duration is dominated by the flush at disk bandwidth: ~4s plus
        // 0.6s of memory writes.
        assert!(stats.duration > 4.0, "duration {}", stats.duration);
        // The dirty ratio is respected at the end.
        assert!(io.memory_manager().dirty() <= 0.2 * 1000.0 * MB + 1.0);
        io.memory_manager().check_invariants().unwrap();
    }

    #[test]
    fn writethrough_write_is_disk_speed_and_leaves_clean_cache() {
        let (sim, io) = setup(10_000.0 * MB, WriteMode::WriteThrough);
        let h = sim.spawn({
            let io = io.clone();
            async move { io.write_file(&"f".into(), 500.0 * MB).await }
        });
        sim.run();
        let stats = h.try_take_result().unwrap();
        approx(stats.bytes_to_disk, 500.0 * MB);
        approx(stats.bytes_to_cache, 500.0 * MB);
        approx(stats.duration, 5.0); // 500 MB at 100 MB/s
        approx(io.memory_manager().dirty(), 0.0);
        approx(io.memory_manager().cached(), 500.0 * MB);
    }

    #[test]
    fn writethrough_then_read_hits_cache() {
        let (sim, io) = setup(10_000.0 * MB, WriteMode::WriteThrough);
        let h = sim.spawn({
            let io = io.clone();
            async move {
                io.write_file(&"f".into(), 500.0 * MB).await;
                io.read_file(&"f".into(), 500.0 * MB).await
            }
        });
        sim.run();
        let stats = h.try_take_result().unwrap();
        approx(stats.bytes_from_cache, 500.0 * MB);
        approx(stats.bytes_from_disk, 0.0);
    }

    #[test]
    fn read_larger_than_memory_evicts_and_still_completes() {
        // 1000 MB of RAM, 3000 MB file: the file cannot be fully cached.
        let (sim, io) = setup(1000.0 * MB, WriteMode::WriteBack);
        let h = sim.spawn({
            let io = io.clone();
            async move {
                let s = io.read_file(&"f".into(), 3000.0 * MB).await;
                io.memory_manager().release_anonymous_memory(3000.0 * MB);
                s
            }
        });
        sim.run();
        let stats = h.try_take_result().unwrap();
        approx(stats.bytes_from_disk, 3000.0 * MB);
        // The cache never exceeds total memory.
        assert!(io.memory_manager().cached() <= 1000.0 * MB + 1.0);
        io.memory_manager().check_invariants().unwrap();
    }

    #[test]
    fn rereading_file_larger_than_memory_still_partially_hits_cache_or_disk() {
        let (sim, io) = setup(1000.0 * MB, WriteMode::WriteBack);
        let h = sim.spawn({
            let io = io.clone();
            async move {
                io.read_file(&"f".into(), 3000.0 * MB).await;
                io.memory_manager().release_anonymous_memory(3000.0 * MB);
                let s = io.read_file(&"f".into(), 3000.0 * MB).await;
                io.memory_manager().release_anonymous_memory(3000.0 * MB);
                s
            }
        });
        sim.run();
        let stats = h.try_take_result().unwrap();
        // Everything read, one way or the other.
        approx_tol(
            stats.bytes_from_disk + stats.bytes_from_cache,
            3000.0 * MB,
            0.01,
        );
        io.memory_manager().check_invariants().unwrap();
    }

    #[test]
    fn chunk_size_does_not_change_totals() {
        for chunk_mb in [10.0, 50.0, 250.0] {
            let (sim, io) = setup(10_000.0 * MB, WriteMode::WriteBack);
            let io = io.with_chunk_size(chunk_mb * MB);
            let h = sim.spawn({
                let io = io.clone();
                async move {
                    let r = io.read_file(&"f".into(), 1000.0 * MB).await;
                    let w = io.write_file(&"g".into(), 500.0 * MB).await;
                    (r, w)
                }
            });
            sim.run();
            let (r, w) = h.try_take_result().unwrap();
            approx(r.bytes_from_disk, 1000.0 * MB);
            approx(w.bytes_to_cache, 500.0 * MB);
        }
    }

    #[test]
    fn zero_byte_file_is_a_noop() {
        let (sim, io) = setup(1000.0 * MB, WriteMode::WriteBack);
        let h = sim.spawn({
            let io = io.clone();
            async move {
                let r = io.read_file(&"f".into(), 0.0).await;
                let w = io.write_file(&"f".into(), 0.0).await;
                (r, w)
            }
        });
        sim.run();
        let (r, w) = h.try_take_result().unwrap();
        assert_eq!(r.total_bytes(), 0.0);
        assert_eq!(w.total_bytes(), 0.0);
        assert_eq!(sim.now().as_secs(), 0.0);
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn invalid_chunk_size_rejected() {
        let (_sim, io) = setup(1000.0 * MB, WriteMode::WriteBack);
        let _ = io.with_chunk_size(0.0);
    }

    #[test]
    fn clamp_io_range_cases() {
        assert_eq!(clamp_io_range(0.0, f64::INFINITY, 100.0), (0.0, 100.0));
        assert_eq!(clamp_io_range(40.0, 100.0, 100.0), (40.0, 60.0));
        assert_eq!(clamp_io_range(-5.0, 10.0, 100.0), (0.0, 10.0));
        assert_eq!(clamp_io_range(150.0, 10.0, 100.0), (100.0, 0.0));
        assert_eq!(clamp_io_range(20.0, -3.0, 100.0), (20.0, 0.0));
        assert_eq!(clamp_io_range(0.0, f64::INFINITY, 0.0), (0.0, 0.0));
    }

    #[test]
    fn clamp_io_range_edge_cases() {
        // Zero-length ranges anywhere in or out of the file.
        assert_eq!(clamp_io_range(0.0, 0.0, 100.0), (0.0, 0.0));
        assert_eq!(clamp_io_range(50.0, 0.0, 100.0), (50.0, 0.0));
        // Offset exactly at EOF, and beyond it (finite and infinite).
        assert_eq!(clamp_io_range(100.0, 0.0, 100.0), (100.0, 0.0));
        assert_eq!(clamp_io_range(100.0, f64::INFINITY, 100.0), (100.0, 0.0));
        assert_eq!(clamp_io_range(f64::INFINITY, 10.0, 100.0), (100.0, 0.0));
        // A range straddling EOF truncates to the in-file part.
        assert_eq!(clamp_io_range(90.0, 20.0, 100.0), (90.0, 10.0));
        // Negative infinity offset clamps like any negative offset.
        assert_eq!(clamp_io_range(f64::NEG_INFINITY, 10.0, 100.0), (0.0, 10.0));
        // NaN offset/length describe no range — notably, a NaN offset must
        // not silently turn into a read of the first `len` bytes.
        assert_eq!(clamp_io_range(f64::NAN, 10.0, 100.0), (0.0, 0.0));
        assert_eq!(clamp_io_range(10.0, f64::NAN, 100.0), (0.0, 0.0));
        assert_eq!(clamp_io_range(f64::NAN, f64::NAN, 100.0), (0.0, 0.0));
        // Empty file: everything clamps to zero.
        assert_eq!(clamp_io_range(5.0, 5.0, 0.0), (0.0, 0.0));
    }

    #[test]
    fn partial_reread_hits_cache_for_min_len_cached() {
        let (sim, io) = setup(10_000.0 * MB, WriteMode::WriteBack);
        let h = sim.spawn({
            let io = io.clone();
            async move {
                io.read_file(&"f".into(), 1000.0 * MB).await;
                io.memory_manager().release_anonymous_memory(1000.0 * MB);
                // A 300 MB partial re-read of the fully cached file.
                io.read_amount(&"f".into(), 1000.0 * MB, 300.0 * MB).await
            }
        });
        sim.run();
        let stats = h.try_take_result().unwrap();
        approx(stats.bytes_from_cache, 300.0 * MB);
        approx(stats.bytes_from_disk, 0.0);
        approx(stats.duration, 0.3);
    }

    #[test]
    fn fsync_flushes_only_the_target_file() {
        let (sim, io) = setup(10_000.0 * MB, WriteMode::WriteBack);
        let h = sim.spawn({
            let io = io.clone();
            async move {
                io.write_file(&"a".into(), 300.0 * MB).await;
                io.write_file(&"b".into(), 200.0 * MB).await;
                let t0 = io.ctx.now().as_secs();
                let s = io.fsync(&"a".into()).await;
                (s, io.ctx.now().as_secs() - t0)
            }
        });
        sim.run();
        let (stats, elapsed) = h.try_take_result().unwrap();
        approx(stats.bytes_to_disk, 300.0 * MB);
        approx(stats.duration, elapsed);
        approx(elapsed, 3.0); // 300 MB at 100 MB/s
        approx(io.memory_manager().dirty_amount(&"a".into()), 0.0);
        approx(io.memory_manager().dirty_amount(&"b".into()), 200.0 * MB);
        // The flushed data stays cached, now clean.
        approx(io.memory_manager().cached_amount(&"a".into()), 300.0 * MB);
        io.memory_manager().check_invariants().unwrap();
    }

    #[test]
    fn fsync_of_clean_file_is_a_noop() {
        let (sim, io) = setup(10_000.0 * MB, WriteMode::WriteBack);
        let h = sim.spawn({
            let io = io.clone();
            async move {
                io.read_file(&"f".into(), 100.0 * MB).await;
                io.fsync(&"f".into()).await
            }
        });
        sim.run();
        let stats = h.try_take_result().unwrap();
        approx(stats.bytes_to_disk, 0.0);
        approx(stats.duration, 0.0);
    }

    #[test]
    fn sync_flushes_all_dirty_data() {
        let (sim, io) = setup(10_000.0 * MB, WriteMode::WriteBack);
        let h = sim.spawn({
            let io = io.clone();
            async move {
                io.write_file(&"a".into(), 300.0 * MB).await;
                io.write_file(&"b".into(), 200.0 * MB).await;
                io.sync().await
            }
        });
        sim.run();
        let stats = h.try_take_result().unwrap();
        approx(stats.bytes_to_disk, 500.0 * MB);
        approx(io.memory_manager().dirty(), 0.0);
        approx(io.memory_manager().cached(), 500.0 * MB);
    }
}
