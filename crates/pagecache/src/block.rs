//! Data blocks: the unit of cached data in the simulation model.
//!
//! The Linux kernel tracks individual 4 KiB pages in its LRU lists. Simulating
//! lists of pages would be prohibitively slow for data-intensive workloads
//! (hundreds of gigabytes), so the paper introduces the *data block*: a set of
//! file pages cached by the same I/O operation, described only by its size,
//! timestamps and dirty flag (§III-A-1, Fig. 2). Blocks can be split
//! arbitrarily, which is how partial flushes, evictions and reads are
//! modelled.

use std::fmt;
use std::rc::Rc;

use des::SimTime;

/// Identifier of a simulated file. Cheap to clone (reference-counted interned
/// name).
///
/// Equality first compares the `Rc` pointers: clones of the same interned
/// name — the overwhelmingly common case on the hot block-vs-requested-file
/// checks in the LRU walks — are equal without touching the string bytes.
#[derive(Debug, Clone, Eq, PartialOrd, Ord)]
pub struct FileId(Rc<str>);

impl PartialEq for FileId {
    fn eq(&self, other: &Self) -> bool {
        Rc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}

impl std::hash::Hash for FileId {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Hash the name, matching `PartialEq` (pointer equality implies name
        // equality).
        self.0.hash(state);
    }
}

impl FileId {
    /// Creates a file identifier from a name.
    pub fn new(name: impl AsRef<str>) -> Self {
        FileId(Rc::from(name.as_ref()))
    }

    /// The file name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl From<&str> for FileId {
    fn from(s: &str) -> Self {
        FileId::new(s)
    }
}

impl From<String> for FileId {
    fn from(s: String) -> Self {
        FileId::new(s)
    }
}

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A contiguous amount of cached data belonging to one file, as stored in the
/// simulated LRU lists (paper Fig. 2).
#[derive(Debug, Clone, PartialEq)]
pub struct DataBlock {
    /// The file this data belongs to.
    pub file: FileId,
    /// Amount of cached data in bytes.
    pub size: f64,
    /// Virtual time at which the block (or its dirty ancestor) entered the
    /// cache. Used by the periodical flusher to detect expired dirty data.
    pub entry_time: SimTime,
    /// Virtual time of the last access; LRU lists are ordered by this field.
    pub last_access: SimTime,
    /// Whether the data has not yet been persisted to disk.
    pub dirty: bool,
}

impl DataBlock {
    /// Creates a clean block cached at `now` (a block created by reading
    /// uncached data from disk).
    pub fn clean(file: FileId, size: f64, now: SimTime) -> Self {
        debug_assert!(size > 0.0, "blocks must have positive size");
        DataBlock {
            file,
            size,
            entry_time: now,
            last_access: now,
            dirty: false,
        }
    }

    /// Creates a dirty block written to the cache at `now`.
    pub fn dirty(file: FileId, size: f64, now: SimTime) -> Self {
        debug_assert!(size > 0.0, "blocks must have positive size");
        DataBlock {
            file,
            size,
            entry_time: now,
            last_access: now,
            dirty: true,
        }
    }

    /// Splits off the first `amount` bytes into a new block that keeps this
    /// block's timestamps and dirty flag; `self` keeps the remainder.
    ///
    /// # Panics
    /// Panics (debug) if `amount` is not strictly between 0 and `self.size`.
    pub fn split_off(&mut self, amount: f64) -> DataBlock {
        debug_assert!(
            amount > 0.0 && amount < self.size,
            "split amount {amount} out of range (block size {})",
            self.size
        );
        self.size -= amount;
        DataBlock {
            file: self.file.clone(),
            size: amount,
            entry_time: self.entry_time,
            last_access: self.last_access,
            dirty: self.dirty,
        }
    }

    /// Whether the dirty data in this block is older than `expire` seconds at
    /// time `now` (and should therefore be written back by the periodical
    /// flusher).
    pub fn is_expired(&self, now: SimTime, expire: f64) -> bool {
        self.dirty && now.duration_since(self.entry_time) > expire
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_id_equality_and_display() {
        let a = FileId::new("file1");
        let b: FileId = "file1".into();
        let c: FileId = String::from("file2").into();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.to_string(), "file1");
        assert_eq!(c.name(), "file2");
    }

    #[test]
    fn clean_and_dirty_constructors() {
        let t = SimTime::from_secs(10.0);
        let c = DataBlock::clean("f".into(), 100.0, t);
        assert!(!c.dirty);
        assert_eq!(c.entry_time, t);
        assert_eq!(c.last_access, t);
        let d = DataBlock::dirty("f".into(), 100.0, t);
        assert!(d.dirty);
    }

    #[test]
    fn split_preserves_metadata() {
        let entry = SimTime::from_secs(5.0);
        let mut blk = DataBlock {
            file: "f1".into(),
            size: 100.0,
            entry_time: entry,
            last_access: SimTime::from_secs(8.0),
            dirty: true,
        };
        let head = blk.split_off(30.0);
        assert_eq!(head.size, 30.0);
        assert_eq!(blk.size, 70.0);
        assert_eq!(head.entry_time, entry);
        assert_eq!(head.last_access, SimTime::from_secs(8.0));
        assert!(head.dirty);
        assert_eq!(head.file, blk.file);
    }

    #[test]
    fn expiration() {
        let blk = DataBlock::dirty("f".into(), 10.0, SimTime::from_secs(0.0));
        assert!(!blk.is_expired(SimTime::from_secs(10.0), 30.0));
        assert!(blk.is_expired(SimTime::from_secs(31.0), 30.0));
        let clean = DataBlock::clean("f".into(), 10.0, SimTime::from_secs(0.0));
        assert!(!clean.is_expired(SimTime::from_secs(100.0), 30.0));
    }
}
