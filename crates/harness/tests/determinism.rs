//! Acceptance tests of the sweep harness:
//!
//! * the full registry run is **bit-identical** across thread counts and
//!   dispatch seeds (the property that makes golden gating trustworthy);
//! * the gate passes a run against its own golden and catches synthetic
//!   drift end to end.

use harness::{compare, make_golden, parse, registry, run_sweep, Drift, Json, SweepConfig};

fn config(threads: usize, seed: u64) -> SweepConfig {
    SweepConfig {
        threads,
        seed,
        filter: None,
        shards: 0,
    }
}

#[test]
fn full_sweep_is_bit_identical_across_thread_counts_and_seeds() {
    let scenarios = registry();
    assert!(
        scenarios.len() >= 13,
        "registry must cover >= 13 scenarios, has {}",
        scenarios.len()
    );

    let serial = run_sweep(&scenarios, &config(1, 7));
    assert!(
        serial.all_ok(),
        "scenario failures: {:?}",
        serial.failures()
    );
    let reference = serial.to_json(false).render_pretty();

    for (threads, seed) in [(4, 7), (4, 987654321), (2, 0)] {
        let parallel = run_sweep(&scenarios, &config(threads, seed));
        assert!(parallel.all_ok(), "{:?}", parallel.failures());
        assert_eq!(
            parallel.to_json(false).render_pretty(),
            reference,
            "output differs for threads={threads} seed={seed}"
        );
    }
}

#[test]
fn full_sweep_is_bit_identical_across_shard_counts() {
    // The sharded executor's determinism obligation, mirroring the
    // thread-count test: `--shards 1/2/8` (× dispatch seeds) must produce
    // byte-identical RESULTS.json — the static round-robin partition and
    // index-keyed merge may change *where* a scenario runs, never what the
    // output contains. Intra-scenario point sweeps shard too.
    let scenarios = registry();
    let sharded = |shards: usize, seed: u64| SweepConfig {
        threads: 1,
        seed,
        filter: None,
        shards,
    };
    let reference = run_sweep(&scenarios, &sharded(1, 7));
    assert!(
        reference.all_ok(),
        "scenario failures: {:?}",
        reference.failures()
    );
    let reference = reference.to_json(false).render_pretty();

    for (shards, seed) in [(2, 7), (8, 987654321), (8, 0)] {
        let run = run_sweep(&scenarios, &sharded(shards, seed));
        assert!(run.all_ok(), "{:?}", run.failures());
        assert_eq!(
            run.to_json(false).render_pretty(),
            reference,
            "output differs for shards={shards} seed={seed}"
        );
    }

    // And the sharded executor agrees byte-for-byte with the thread pool.
    let pooled = run_sweep(&scenarios, &config(4, 7));
    assert!(pooled.all_ok(), "{:?}", pooled.failures());
    assert_eq!(pooled.to_json(false).render_pretty(), reference);
}

#[test]
fn traffic_group_is_bit_identical_across_threads_and_seeds() {
    // The traffic tier's determinism obligation: latency percentiles,
    // throughput and tenant-enforcement byte counts of every traffic
    // scenario must not depend on harness thread count or dispatch seed
    // (every random draw comes from generator-local seeded streams).
    let scenarios = registry();
    let cfg = |threads: usize, seed: u64| SweepConfig {
        threads,
        seed,
        filter: Some("traffic_".to_string()),
        shards: 0,
    };
    let reference = run_sweep(&scenarios, &cfg(1, 0));
    assert!(reference.all_ok(), "{:?}", reference.failures());
    assert!(
        reference.scenarios.len() >= 3,
        "expected >= 3 traffic scenarios"
    );
    let reference = reference.to_json(false).render_pretty();
    for (threads, seed) in [(1, 1), (1, 42), (4, 0), (4, 1), (4, 42)] {
        let run = run_sweep(&scenarios, &cfg(threads, seed));
        assert!(run.all_ok(), "{:?}", run.failures());
        assert_eq!(
            run.to_json(false).render_pretty(),
            reference,
            "traffic output differs for threads={threads} seed={seed}"
        );
    }
}

#[test]
fn sweep_results_pass_their_own_golden_and_catch_injected_drift() {
    // A filtered sub-sweep keeps this test fast while exercising the whole
    // pipeline: run → serialize → golden → parse → compare.
    let scenarios = registry();
    let cfg = SweepConfig {
        threads: 2,
        seed: 0,
        filter: Some("sweep_".to_string()),
        shards: 0,
    };
    let results = run_sweep(&scenarios, &cfg);
    assert!(results.all_ok(), "{:?}", results.failures());
    assert!(
        results.scenarios.len() >= 3,
        "expected >= 3 synthetic sweeps"
    );

    let doc = results.to_json(false);
    let golden = make_golden(&doc, None);
    // Round-trip through text, as the real gate does with files on disk.
    let golden = parse(&golden.render_pretty()).unwrap();
    let rerun = parse(&doc.render_pretty()).unwrap();
    assert_eq!(compare(&golden, &rerun).unwrap(), Vec::new());

    // Inject 1% drift into one metric: the gate must flag exactly that key.
    let mut drifted = rerun.clone();
    let key = inject_drift(&mut drifted, 1.01);
    let drifts = compare(&golden, &drifted).unwrap();
    assert_eq!(drifts.len(), 1, "{drifts:?}");
    match &drifts[0] {
        Drift::Value { key: k, rel, .. } => {
            assert_eq!(*k, key);
            assert!((*rel - 0.01).abs() < 1e-9, "rel = {rel}");
        }
        other => panic!("expected value drift, got {other:?}"),
    }
}

/// Multiplies the first non-zero metric of the first scenario by `factor`
/// and returns its `scenario/metric` key.
fn inject_drift(doc: &mut Json, factor: f64) -> String {
    let Json::Obj(pairs) = doc else {
        panic!("not an object")
    };
    let scenarios = &mut pairs
        .iter_mut()
        .find(|(k, _)| k == "scenarios")
        .expect("scenarios section")
        .1;
    let Json::Obj(scenarios) = scenarios else {
        panic!("not an object")
    };
    let (scenario_name, scenario) = scenarios.first_mut().expect("at least one scenario");
    let metrics = &mut scenario
        .pairs()
        .iter()
        .position(|(k, _)| k == "metrics")
        .map(|i| match scenario {
            Json::Obj(pairs) => &mut pairs[i].1,
            _ => unreachable!(),
        })
        .expect("metrics section");
    let Json::Obj(metrics) = metrics else {
        panic!("not an object")
    };
    for (name, value) in metrics.iter_mut() {
        if let Json::Num(v) = value {
            if *v != 0.0 {
                let key = format!("{scenario_name}/{name}");
                *v *= factor;
                return key;
            }
        }
    }
    panic!("no non-zero metric found to drift");
}
