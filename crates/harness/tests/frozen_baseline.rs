//! The proof obligation of a scenario-adding PR: regenerating
//! `baselines/golden.json` (new scenarios add metrics) must not move any
//! **pre-existing** prediction. `baselines/golden_pr8.json` is the frozen
//! snapshot of the baseline as it stood before the traffic tier (and is
//! itself a superset of the pre-network-tier `golden_pr7.json`, the
//! pre-fault-injection `golden_pr5.json` and the pre-readahead
//! `golden_pr4.json`); every metric it pins must come out of today's
//! registry bit-identical — in particular, traffic generation and tenant
//! cache groups are **off by default** and must not move anything.
//!
//! CI runs the same check via `sweep --check --check-frozen
//! baselines/golden_pr8.json`; this test keeps it enforced under plain
//! `cargo test` too.

use harness::{compare_intersection_exact, parse, registry, run_sweep, SweepConfig};

const FROZEN: &str = include_str!("../../../baselines/golden_pr8.json");

#[test]
fn pre_existing_golden_metrics_are_bit_identical() {
    let frozen = parse(FROZEN).expect("frozen baseline parses");
    let results = run_sweep(
        &registry(),
        &SweepConfig {
            threads: 4,
            seed: 0,
            filter: None,
            shards: 0,
        },
    );
    assert!(results.all_ok(), "{:?}", results.failures());
    // Round-trip through text, as the real gate does with files on disk.
    let doc = parse(&results.to_json(false).render_pretty()).unwrap();
    let drifts = compare_intersection_exact(&frozen, &doc).unwrap();
    assert!(
        drifts.is_empty(),
        "pre-existing metrics moved or vanished:\n{}",
        drifts
            .iter()
            .map(|d| format!("  {d}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
