//! Sharded parallel execution of independent simulation instances.
//!
//! The DES engine is single-threaded by design (`Rc`/`RefCell`, `!Send`), so
//! all parallelism lives *between* engine instances. This module is the
//! executor for that: [`run_sharded`] partitions `jobs` indices round-robin
//! across `shards` OS threads — shard `k` runs jobs `k, k+shards, 2k+shards…`
//! — and merges the results **keyed by job index**, so the output `Vec` is
//! identical for any shard count. Unlike the runner's work-stealing cursor
//! pool, the partition is *static*: which thread runs which job is a pure
//! function of `(jobs, shards)`, never of timing.
//!
//! Two layers use it:
//!
//! * the sweep runner (`--shards N`) runs whole registry scenarios as jobs;
//! * registry sweep scenarios run their own *sweep points* (independent
//!   simulation instances differing only in one parameter) as jobs via
//!   [`run_points`], which parallelizes inside a single scenario.
//!
//! The intra-scenario shard count is a process-wide knob
//! ([`set_point_shards`], default 1 = sequential) so scenario code stays
//! oblivious to how the harness was invoked.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide shard count for *intra-scenario* point sweeps. 1 = run
/// points sequentially (the default, and the behavior under the classic
/// thread-pool runner).
static POINT_SHARDS: AtomicUsize = AtomicUsize::new(1);

/// Sets the shard count used by [`run_points`] when scenarios sweep their
/// parameter points. The sweep CLI sets this from `--shards`.
pub fn set_point_shards(shards: usize) {
    POINT_SHARDS.store(shards.max(1), Ordering::Relaxed);
}

/// The current intra-scenario shard count (≥ 1).
pub fn point_shards() -> usize {
    POINT_SHARDS.load(Ordering::Relaxed).max(1)
}

/// Runs `jobs` independent jobs across `shards` threads with a static
/// round-robin partition and an index-keyed merge.
///
/// `job(i)` is called exactly once for every `i in 0..jobs`; the returned
/// `Vec` holds the results in job-index order regardless of the shard count
/// or thread interleaving — byte-identical output is a structural property,
/// not a scheduling accident. `shards` is clamped to `[1, jobs]`; with one
/// shard (or one job) everything runs on the calling thread.
///
/// A panicking job aborts the whole run by propagating the panic — callers
/// that need per-job fault isolation wrap `job` in `catch_unwind` themselves
/// (the sweep runner does).
pub fn run_sharded<T, F>(jobs: usize, shards: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let shards = shards.max(1).min(jobs.max(1));
    if shards == 1 {
        return (0..jobs).map(job).collect();
    }
    let job = &job;
    let partials: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..shards)
            .map(|k| {
                scope.spawn(move || {
                    (k..jobs)
                        .step_by(shards)
                        .map(|i| (i, job(i)))
                        .collect::<Vec<(usize, T)>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
            .collect()
    });
    let mut out: Vec<Option<T>> = (0..jobs).map(|_| None).collect();
    for partial in partials {
        for (i, v) in partial {
            debug_assert!(out[i].is_none(), "job {i} ran twice");
            out[i] = Some(v);
        }
    }
    out.into_iter()
        .map(|slot| slot.expect("static partition covers every job"))
        .collect()
}

/// Runs one independent simulation per point of a parameter sweep, sharded
/// per the process-wide [`point_shards`] setting, and returns the results in
/// point order. The first error (in point order, not completion order) wins,
/// keeping failure reporting deterministic too.
pub fn run_points<P, T, F>(points: &[P], f: F) -> Result<Vec<T>, String>
where
    P: Sync,
    T: Send,
    F: Fn(&P) -> Result<T, String> + Sync,
{
    run_sharded(points.len(), point_shards(), |i| f(&points[i]))
        .into_iter()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_in_job_index_order_for_any_shard_count() {
        let expected: Vec<usize> = (0..37).map(|i| i * i).collect();
        for shards in [1, 2, 3, 8, 36, 37, 64] {
            let got = run_sharded(37, shards, |i| i * i);
            assert_eq!(got, expected, "shards={shards}");
        }
    }

    #[test]
    fn shard_count_is_clamped() {
        // 0 shards behaves like 1; more shards than jobs is fine.
        assert_eq!(run_sharded(3, 0, |i| i), vec![0, 1, 2]);
        assert_eq!(run_sharded(3, 100, |i| i), vec![0, 1, 2]);
        let empty: Vec<usize> = run_sharded(0, 4, |i| i);
        assert!(empty.is_empty());
    }

    #[test]
    fn every_job_runs_exactly_once() {
        use std::sync::Mutex;
        let counts = Mutex::new(vec![0u32; 100]);
        run_sharded(100, 7, |i| {
            counts.lock().unwrap()[i] += 1;
        });
        assert!(counts.lock().unwrap().iter().all(|&c| c == 1));
    }

    #[test]
    fn run_points_collects_in_point_order_and_first_error_wins() {
        let points = [1u32, 2, 3, 4];
        let ok: Result<Vec<u32>, String> = run_points(&points, |&p| Ok(p * 10));
        assert_eq!(ok.unwrap(), vec![10, 20, 30, 40]);

        let err: Result<Vec<u32>, String> = run_points(&points, |&p| {
            if p % 2 == 0 {
                Err(format!("bad point {p}"))
            } else {
                Ok(p)
            }
        });
        // Point 2 fails before point 4 in point order.
        assert_eq!(err.unwrap_err(), "bad point 2");
    }

    #[test]
    fn point_shards_setting_round_trips_and_clamps() {
        let prev = point_shards();
        set_point_shards(5);
        assert_eq!(point_shards(), 5);
        set_point_shards(0);
        assert_eq!(point_shards(), 1);
        set_point_shards(prev);
    }
}
