//! The golden-baseline regression gate.
//!
//! `baselines/golden.json` pins every metric of every scenario. A sweep run
//! is compared against it metric by metric with **per-metric relative
//! tolerances**; any out-of-tolerance drift, missing scenario, or missing
//! metric fails the gate (and with it, CI).
//!
//! ## Baseline-update workflow
//!
//! The simulator is deterministic, so goldens only move when the *model*
//! moves. When a PR legitimately changes predictions (a model fix, a new
//! default, a re-calibration), that PR must regenerate the baseline **in the
//! same commit** (`scripts/sweep.sh --update-golden`) and explain in its
//! description *why* the predictions moved. A golden diff without a stated
//! reason is a regression, not an update.
//!
//! ## Golden format
//!
//! ```json
//! {
//!   "version": 1,
//!   "tolerances": {"default_rel": 1e-6, "overrides": {"fig8_": 1e-3}},
//!   "scenarios": { "<name>": {"group": "...", "metrics": {"<key>": 1.25}} }
//! }
//! ```
//!
//! Override keys are substring patterns matched against
//! `"<scenario>/<metric>"`; the longest matching pattern wins.

use crate::json::Json;

/// Values with magnitude below this are compared absolutely rather than
/// relatively (a relative tolerance is meaningless around zero).
const ABS_FLOOR: f64 = 1e-9;

/// Per-metric relative tolerances.
#[derive(Debug, Clone)]
pub struct Tolerances {
    /// Tolerance applied when no override matches.
    pub default_rel: f64,
    /// `(substring pattern, relative tolerance)` overrides.
    pub overrides: Vec<(String, f64)>,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            // The simulation is deterministic; the default headroom only
            // absorbs benign float-formatting differences.
            default_rel: 1e-6,
            overrides: Vec::new(),
        }
    }
}

impl Tolerances {
    /// Parses the `tolerances` section of a golden document (absent section
    /// and fields fall back to defaults).
    pub fn from_json(doc: &Json) -> Tolerances {
        let mut t = Tolerances::default();
        let Some(section) = doc.get("tolerances") else {
            return t;
        };
        if let Some(v) = section.get("default_rel").and_then(Json::as_f64) {
            t.default_rel = v;
        }
        if let Some(Json::Obj(pairs)) = section.get("overrides") {
            for (pattern, v) in pairs {
                if let Some(rel) = v.as_f64() {
                    t.overrides.push((pattern.clone(), rel));
                }
            }
        }
        t
    }

    /// The relative tolerance for one `"<scenario>/<metric>"` key: the
    /// longest matching override pattern, or the default.
    pub fn for_key(&self, key: &str) -> f64 {
        self.overrides
            .iter()
            .filter(|(pattern, _)| key.contains(pattern.as_str()))
            .max_by_key(|(pattern, _)| pattern.len())
            .map(|(_, rel)| *rel)
            .unwrap_or(self.default_rel)
    }
}

/// One detected difference between a sweep run and the golden baseline.
#[derive(Debug, Clone, PartialEq)]
pub enum Drift {
    /// The golden file lists a scenario the run did not produce.
    MissingScenario(String),
    /// The run produced a scenario the golden file does not know.
    UnknownScenario(String),
    /// A golden metric is absent from the run (key is `scenario/metric`).
    MissingMetric(String),
    /// The run produced a metric the golden file does not know.
    UnknownMetric(String),
    /// A metric moved outside its tolerance.
    Value {
        /// `scenario/metric` key.
        key: String,
        /// Golden value.
        golden: f64,
        /// Value produced by the run.
        actual: f64,
        /// Observed relative deviation.
        rel: f64,
        /// Allowed relative deviation.
        tolerance: f64,
    },
}

impl std::fmt::Display for Drift {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Drift::MissingScenario(name) => write!(f, "scenario {name} missing from results"),
            Drift::UnknownScenario(name) => write!(f, "scenario {name} not in golden baseline"),
            Drift::MissingMetric(key) => write!(f, "metric {key} missing from results"),
            Drift::UnknownMetric(key) => write!(f, "metric {key} not in golden baseline"),
            Drift::Value {
                key,
                golden,
                actual,
                rel,
                tolerance,
            } => write!(
                f,
                "{key}: golden {golden} vs actual {actual} (rel drift {rel:.3e} > tol {tolerance:.1e})"
            ),
        }
    }
}

fn metric_map(scenario: &Json) -> Vec<(&String, f64)> {
    scenario
        .get("metrics")
        .map(Json::pairs)
        .unwrap_or(&[])
        .iter()
        .filter_map(|(k, v)| v.as_f64().map(|v| (k, v)))
        .collect()
}

/// Compares a sweep result document against a golden document; returns every
/// drift found (empty = gate passes). Both documents use the schema produced
/// by [`crate::runner::SweepResults::to_json`]; the `timings` section, being
/// machine-dependent, is ignored entirely.
pub fn compare(golden: &Json, results: &Json) -> Result<Vec<Drift>, String> {
    let tolerances = Tolerances::from_json(golden);
    let golden_scenarios = golden
        .get("scenarios")
        .ok_or("golden file has no 'scenarios' section")?;
    let result_scenarios = results
        .get("scenarios")
        .ok_or("results file has no 'scenarios' section")?;

    let mut drifts = Vec::new();
    for (name, golden_scenario) in golden_scenarios.pairs() {
        let Some(result_scenario) = result_scenarios.get(name) else {
            drifts.push(Drift::MissingScenario(name.clone()));
            continue;
        };
        let actual = metric_map(result_scenario);
        let expected = metric_map(golden_scenario);
        for &(metric, golden_value) in &expected {
            let key = format!("{name}/{metric}");
            let Some(&(_, actual_value)) = actual.iter().find(|(k, _)| *k == metric) else {
                drifts.push(Drift::MissingMetric(key));
                continue;
            };
            let scale = golden_value.abs().max(ABS_FLOOR);
            let rel = (actual_value - golden_value).abs() / scale;
            let tolerance = tolerances.for_key(&key);
            if rel > tolerance {
                drifts.push(Drift::Value {
                    key,
                    golden: golden_value,
                    actual: actual_value,
                    rel,
                    tolerance,
                });
            }
        }
        for (metric, _) in actual {
            if expected.iter().all(|(k, _)| *k != metric) {
                drifts.push(Drift::UnknownMetric(format!("{name}/{metric}")));
            }
        }
    }
    for (name, _) in result_scenarios.pairs() {
        if golden_scenarios.get(name).is_none() {
            drifts.push(Drift::UnknownScenario(name.clone()));
        }
    }
    Ok(drifts)
}

/// Compares a sweep run against a **frozen** reference document,
/// restricted to the reference's scenarios and metrics and with **zero
/// tolerance**: every metric the reference knows must be present in the run
/// and bit-identical; scenarios and metrics that exist only in the run are
/// ignored.
///
/// This is the proof obligation of a PR that *adds* scenarios or metrics:
/// regenerating `baselines/golden.json` in the same commit is legitimate,
/// but the regeneration must not move any pre-existing prediction. CI runs
/// this against the frozen snapshot of the previous baseline
/// (`sweep --check-frozen <path>`).
pub fn compare_intersection_exact(reference: &Json, results: &Json) -> Result<Vec<Drift>, String> {
    let reference_scenarios = reference
        .get("scenarios")
        .ok_or("reference file has no 'scenarios' section")?;
    let result_scenarios = results
        .get("scenarios")
        .ok_or("results file has no 'scenarios' section")?;

    let mut drifts = Vec::new();
    for (name, reference_scenario) in reference_scenarios.pairs() {
        let Some(result_scenario) = result_scenarios.get(name) else {
            drifts.push(Drift::MissingScenario(name.clone()));
            continue;
        };
        let actual = metric_map(result_scenario);
        for &(metric, reference_value) in &metric_map(reference_scenario) {
            let key = format!("{name}/{metric}");
            let Some(&(_, actual_value)) = actual.iter().find(|(k, _)| *k == metric) else {
                drifts.push(Drift::MissingMetric(key));
                continue;
            };
            // Bit-identity: the JSON round-trip uses shortest-representation
            // floats, so equality of the parsed values is equality of the
            // rendered documents.
            if actual_value != reference_value {
                let scale = reference_value.abs().max(ABS_FLOOR);
                drifts.push(Drift::Value {
                    key,
                    golden: reference_value,
                    actual: actual_value,
                    rel: (actual_value - reference_value).abs() / scale,
                    tolerance: 0.0,
                });
            }
        }
    }
    Ok(drifts)
}

/// Attaches a tolerances section to a result document, producing a complete
/// golden file. Existing tolerances (when regenerating) are carried over.
pub fn make_golden(results: &Json, previous_golden: Option<&Json>) -> Json {
    let tolerances = previous_golden
        .and_then(|g| g.get("tolerances"))
        .cloned()
        .unwrap_or_else(|| {
            Json::obj(vec![
                ("default_rel".to_string(), Json::Num(1e-6)),
                ("overrides".to_string(), Json::Obj(Vec::new())),
            ])
        });
    let mut pairs = vec![
        ("version".to_string(), Json::Num(1.0)),
        ("tolerances".to_string(), tolerances),
    ];
    if let Some(scenarios) = results.get("scenarios") {
        pairs.push(("scenarios".to_string(), scenarios.clone()));
    }
    Json::obj(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn doc(metrics: &str) -> Json {
        parse(&format!(
            "{{\"version\":1,\"scenarios\":{{\"s\":{{\"group\":\"paper\",\"metrics\":{metrics}}}}}}}"
        ))
        .unwrap()
    }

    #[test]
    fn in_tolerance_metrics_pass() {
        let golden = doc("{\"a\": 100.0, \"b\": 0.0}");
        // 1e-7 relative drift on `a`, exact match on `b`: both inside the
        // default 1e-6 tolerance.
        let results = doc("{\"a\": 100.00001, \"b\": 0.0}");
        assert_eq!(compare(&golden, &results).unwrap(), Vec::new());
    }

    #[test]
    fn drifted_metric_fails_with_details() {
        let golden = doc("{\"a\": 100.0}");
        let results = doc("{\"a\": 103.0}");
        let drifts = compare(&golden, &results).unwrap();
        assert_eq!(drifts.len(), 1);
        match &drifts[0] {
            Drift::Value {
                key,
                golden,
                actual,
                rel,
                ..
            } => {
                assert_eq!(key, "s/a");
                assert_eq!(*golden, 100.0);
                assert_eq!(*actual, 103.0);
                assert!((rel - 0.03).abs() < 1e-12);
            }
            other => panic!("unexpected drift {other:?}"),
        }
        assert!(drifts[0].to_string().contains("s/a"));
    }

    #[test]
    fn overrides_loosen_matching_keys_only() {
        let golden = parse(
            "{\"version\":1,\
              \"tolerances\":{\"default_rel\":1e-6,\"overrides\":{\"s/a\":0.1}},\
              \"scenarios\":{\"s\":{\"group\":\"paper\",\"metrics\":{\"a\":100.0,\"b\":100.0}}}}",
        )
        .unwrap();
        let results = doc("{\"a\": 103.0, \"b\": 103.0}");
        let drifts = compare(&golden, &results).unwrap();
        // `a` is covered by the 10% override; `b` still fails.
        assert_eq!(drifts.len(), 1);
        assert!(matches!(&drifts[0], Drift::Value { key, .. } if key == "s/b"));
        let t = Tolerances::from_json(&golden);
        assert_eq!(t.for_key("s/a"), 0.1);
        assert_eq!(t.for_key("s/b"), 1e-6);
    }

    #[test]
    fn structural_drift_is_reported() {
        let golden = parse(
            "{\"version\":1,\"scenarios\":{\
              \"gone\":{\"group\":\"paper\",\"metrics\":{\"m\":1.0}},\
              \"s\":{\"group\":\"paper\",\"metrics\":{\"kept\":1.0,\"dropped\":2.0}}}}",
        )
        .unwrap();
        let results = parse(
            "{\"version\":1,\"scenarios\":{\
              \"s\":{\"group\":\"paper\",\"metrics\":{\"kept\":1.0,\"added\":3.0}},\
              \"new\":{\"group\":\"paper\",\"metrics\":{}}}}",
        )
        .unwrap();
        let drifts = compare(&golden, &results).unwrap();
        assert!(drifts.contains(&Drift::MissingScenario("gone".to_string())));
        assert!(drifts.contains(&Drift::UnknownScenario("new".to_string())));
        assert!(drifts.contains(&Drift::MissingMetric("s/dropped".to_string())));
        assert!(drifts.contains(&Drift::UnknownMetric("s/added".to_string())));
        assert_eq!(drifts.len(), 4);
    }

    #[test]
    fn near_zero_values_use_the_absolute_floor() {
        let golden = doc("{\"a\": 0.0}");
        // 1e-16 absolute drift around zero must not explode into a huge
        // relative drift.
        let results = doc("{\"a\": 1e-16}");
        assert_eq!(compare(&golden, &results).unwrap(), Vec::new());
    }

    #[test]
    fn intersection_check_ignores_additions_but_pins_the_rest() {
        let reference = parse(
            "{\"version\":1,\"scenarios\":{\
              \"s\":{\"group\":\"paper\",\"metrics\":{\"kept\":1.5,\"dropped\":2.0}},\
              \"gone\":{\"group\":\"paper\",\"metrics\":{\"m\":1.0}}}}",
        )
        .unwrap();
        let results = parse(
            "{\"version\":1,\"scenarios\":{\
              \"s\":{\"group\":\"paper\",\"metrics\":{\"kept\":1.5,\"added\":9.0}},\
              \"brand_new\":{\"group\":\"programs\",\"metrics\":{\"x\":1.0}}}}",
        )
        .unwrap();
        let drifts = compare_intersection_exact(&reference, &results).unwrap();
        // New scenario and new metric are fine; losing a reference scenario
        // or metric is not.
        assert!(drifts.contains(&Drift::MissingScenario("gone".to_string())));
        assert!(drifts.contains(&Drift::MissingMetric("s/dropped".to_string())));
        assert_eq!(drifts.len(), 2);
    }

    #[test]
    fn intersection_check_has_zero_tolerance() {
        let reference = doc("{\"a\": 100.0}");
        // A drift that passes the default 1e-6 relative gate still fails the
        // bit-identity check.
        let results = doc("{\"a\": 100.00000001}");
        assert_eq!(compare(&reference, &results).unwrap(), Vec::new());
        let drifts = compare_intersection_exact(&reference, &results).unwrap();
        assert_eq!(drifts.len(), 1);
        assert!(matches!(&drifts[0], Drift::Value { tolerance, .. } if *tolerance == 0.0));
    }

    #[test]
    fn make_golden_carries_tolerances_over() {
        let results = doc("{\"a\": 1.0}");
        let fresh = make_golden(&results, None);
        assert_eq!(
            fresh
                .get("tolerances")
                .and_then(|t| t.get("default_rel"))
                .and_then(Json::as_f64),
            Some(1e-6)
        );
        let loosened =
            parse("{\"version\":1,\"tolerances\":{\"default_rel\":0.5},\"scenarios\":{}}").unwrap();
        let regenerated = make_golden(&results, Some(&loosened));
        assert_eq!(
            regenerated
                .get("tolerances")
                .and_then(|t| t.get("default_rel"))
                .and_then(Json::as_f64),
            Some(0.5)
        );
        // Scenarios come from the fresh results, not the old golden.
        assert!(regenerated.get("scenarios").unwrap().get("s").is_some());
    }
}
