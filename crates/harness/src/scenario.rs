//! The [`Scenario`] trait and the metric record a scenario produces.
//!
//! A harness scenario is a **self-contained, deterministic** simulation run:
//! it builds its own platform and application, runs one or more DES engines
//! to completion on the calling thread, and reports a flat, ordered list of
//! named metrics. Scenarios must not read clocks, environment variables, or
//! any other ambient state — everything a scenario reports must be a pure
//! function of the simulation model, so `RESULTS.json` is bit-identical
//! across runs, thread counts, and machines.
//!
//! Wall-clock timings are recorded *outside* the scenario by the runner and
//! never participate in golden comparisons.

/// Ordered, named metrics of one scenario run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    entries: Vec<(String, f64)>,
}

impl Metrics {
    /// Creates an empty metric record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a metric. Panics on a duplicate name — every metric key must
    /// be unique within its scenario so golden diffs are unambiguous.
    pub fn push(&mut self, name: impl Into<String>, value: f64) {
        let name = name.into();
        assert!(
            !self.entries.iter().any(|(n, _)| *n == name),
            "duplicate metric name {name:?}"
        );
        self.entries.push((name, value));
    }

    /// The metrics in insertion order.
    pub fn entries(&self) -> &[(String, f64)] {
        &self.entries
    }

    /// Number of metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no metrics were recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// One entry of the sweep registry.
pub trait Scenario: Send + Sync {
    /// Unique scenario name (the key in `RESULTS.json`).
    fn name(&self) -> &'static str;

    /// Group the scenario belongs to: `"paper"`, `"examples"`, or `"sweep"`.
    fn group(&self) -> &'static str;

    /// One-line description shown by `sweep --list`.
    fn description(&self) -> &'static str;

    /// Runs the scenario and returns its metrics.
    fn run(&self) -> Result<Metrics, String>;
}

/// A scenario backed by a plain function pointer (trivially `Send + Sync`).
pub struct FnScenario {
    /// Unique scenario name.
    pub name: &'static str,
    /// Scenario group.
    pub group: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// The scenario body.
    pub run: fn() -> Result<Metrics, String>,
}

impl Scenario for FnScenario {
    fn name(&self) -> &'static str {
        self.name
    }

    fn group(&self) -> &'static str {
        self.group
    }

    fn description(&self) -> &'static str {
        self.description
    }

    fn run(&self) -> Result<Metrics, String> {
        (self.run)()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_preserve_insertion_order() {
        let mut m = Metrics::new();
        m.push("z", 1.0);
        m.push("a", 2.0);
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
        assert_eq!(m.entries()[0].0, "z");
        assert_eq!(m.entries()[1].0, "a");
    }

    #[test]
    #[should_panic(expected = "duplicate metric")]
    fn duplicate_metric_names_panic() {
        let mut m = Metrics::new();
        m.push("a", 1.0);
        m.push("a", 2.0);
    }

    #[test]
    fn fn_scenario_delegates() {
        fn body() -> Result<Metrics, String> {
            let mut m = Metrics::new();
            m.push("x", 1.5);
            Ok(m)
        }
        let s = FnScenario {
            name: "test",
            group: "sweep",
            description: "a test scenario",
            run: body,
        };
        assert_eq!(s.name(), "test");
        assert_eq!(s.group(), "sweep");
        assert_eq!(s.run().unwrap().entries(), &[("x".to_string(), 1.5)]);
    }
}
