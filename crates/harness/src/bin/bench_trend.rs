//! `bench_trend` — CI perf-trend gate over `scripts/bench.sh` output.
//!
//! Compares a current benchmark JSON (benchmark id → ns/iter, as written by
//! the criterion shim's `BENCH_JSON` hook) against a committed reference
//! (`baselines/bench_reference.json`) and fails only on an order-of-magnitude
//! regression: a benchmark *group* (the first `/`-segment of the id) whose
//! runtime grew by more than `--max-ratio` (default 5×) relative to the
//! overall trend.
//!
//! Two deliberate design choices keep this gate quiet on shared CI runners:
//!
//! * **groups, not individual benches** — single smoke samples are noisy;
//!   summing ns/iter over a group (`lru_lists`, `des_engine`, ...) averages
//!   that out while still catching a complexity-class slip in any subsystem;
//! * **median normalization** — every group ratio is divided by the median
//!   group ratio, so a uniformly slower (or faster) machine moves every
//!   group equally and cancels out; only a group that regressed *relative to
//!   the others* trips the gate.
//!
//! Usage:
//!
//! ```text
//! bench_trend <current.json> <reference.json> [--max-ratio N]
//! ```
//!
//! Updating the reference: when benchmarks are added, removed, or
//! intentionally change cost class, regenerate it in the same commit with
//! `BENCH_SMOKE=1 scripts/bench.sh baselines/bench_reference.json` and say
//! why in the PR. Benchmarks present in only one of the two files are
//! reported but never fail the gate (new benches must not require a
//! same-commit baseline rotation to land).

use std::collections::BTreeMap;
use std::process::ExitCode;

use harness::json;

/// Per-group summed ns/iter, keyed by the first `/`-segment of the bench id.
fn group_totals(doc: &json::Json, keys: &[String]) -> BTreeMap<String, f64> {
    let mut totals = BTreeMap::new();
    for key in keys {
        let ns = doc.get(key).and_then(json::Json::as_f64).unwrap_or(0.0);
        let group = key.split('/').next().unwrap_or(key).to_string();
        *totals.entry(group).or_insert(0.0) += ns;
    }
    totals
}

/// One group's verdict.
struct Trend {
    group: String,
    ratio: f64,
    normalized: f64,
}

/// Compares two bench documents; returns the per-group trends (sorted by
/// group name) computed over the benchmark ids present in **both**, plus the
/// ids only one side has.
fn compare(current: &json::Json, reference: &json::Json) -> (Vec<Trend>, Vec<String>, Vec<String>) {
    let cur_keys: Vec<String> = current.pairs().iter().map(|(k, _)| k.clone()).collect();
    let ref_keys: Vec<String> = reference.pairs().iter().map(|(k, _)| k.clone()).collect();
    let common: Vec<String> = cur_keys
        .iter()
        .filter(|k| ref_keys.contains(k))
        .cloned()
        .collect();
    let only_current: Vec<String> = cur_keys
        .iter()
        .filter(|k| !ref_keys.contains(k))
        .cloned()
        .collect();
    let only_reference: Vec<String> = ref_keys
        .iter()
        .filter(|k| !cur_keys.contains(k))
        .cloned()
        .collect();

    let cur_groups = group_totals(current, &common);
    let ref_groups = group_totals(reference, &common);
    let mut ratios: Vec<f64> = Vec::new();
    let mut trends: Vec<Trend> = Vec::new();
    for (group, &ref_ns) in &ref_groups {
        let cur_ns = cur_groups.get(group).copied().unwrap_or(0.0);
        if ref_ns <= 0.0 || cur_ns <= 0.0 {
            continue;
        }
        let ratio = cur_ns / ref_ns;
        ratios.push(ratio);
        trends.push(Trend {
            group: group.clone(),
            ratio,
            normalized: ratio,
        });
    }
    // Median group ratio = the machine-speed trend; normalize it away.
    ratios.sort_by(|a, b| a.total_cmp(b));
    let median = if ratios.is_empty() {
        1.0
    } else {
        ratios[ratios.len() / 2]
    };
    for t in &mut trends {
        t.normalized = t.ratio / median;
    }
    (trends, only_current, only_reference)
}

fn run(args: &[String]) -> Result<(), String> {
    let mut paths: Vec<&String> = Vec::new();
    let mut max_ratio = 5.0;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--max-ratio" {
            i += 1;
            max_ratio = args
                .get(i)
                .ok_or("--max-ratio needs a value")?
                .parse::<f64>()
                .map_err(|e| format!("invalid --max-ratio: {e}"))?;
        } else {
            paths.push(&args[i]);
        }
        i += 1;
    }
    let [current_path, reference_path] = paths[..] else {
        return Err("usage: bench_trend <current.json> <reference.json> [--max-ratio N]".into());
    };
    let read = |path: &str| -> Result<json::Json, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        json::parse(&text).map_err(|e| format!("cannot parse {path}: {e}"))
    };
    let current = read(current_path)?;
    let reference = read(reference_path)?;

    let (trends, only_current, only_reference) = compare(&current, &reference);
    if trends.is_empty() {
        return Err("no benchmark ids in common between the two files".into());
    }
    for id in &only_current {
        println!("note: {id} has no reference entry (new bench?) — not gated");
    }
    for id in &only_reference {
        println!("note: {id} is in the reference but was not run — not gated");
    }
    let mut failures = 0;
    for t in &trends {
        let verdict = if t.normalized > max_ratio {
            failures += 1;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "{:<20} raw {:>7.2}x  vs-trend {:>7.2}x  {verdict}",
            t.group, t.ratio, t.normalized
        );
    }
    if failures > 0 {
        return Err(format!(
            "{failures} benchmark group(s) regressed more than {max_ratio}x against the trend; \
             if intentional, regenerate the baseline: \
             BENCH_SMOKE=1 scripts/bench.sh baselines/bench_reference.json"
        ));
    }
    println!("bench trend ok: no group beyond {max_ratio}x of the cross-group trend");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bench_trend: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(pairs: &[(&str, f64)]) -> json::Json {
        json::Json::Obj(
            pairs
                .iter()
                .map(|(k, v)| (k.to_string(), json::Json::Num(*v)))
                .collect(),
        )
    }

    #[test]
    fn uniform_machine_slowdown_cancels_out() {
        let reference = doc(&[("a/x/1", 100.0), ("b/y/1", 200.0), ("c/z/1", 50.0)]);
        // Everything 8x slower: a slower runner, not a regression.
        let current = doc(&[("a/x/1", 800.0), ("b/y/1", 1600.0), ("c/z/1", 400.0)]);
        let (trends, _, _) = compare(&current, &reference);
        assert!(trends.iter().all(|t| (t.normalized - 1.0).abs() < 1e-9));
    }

    #[test]
    fn single_group_regression_stands_out() {
        let reference = doc(&[("a/x/1", 100.0), ("b/y/1", 200.0), ("c/z/1", 50.0)]);
        let current = doc(&[("a/x/1", 100.0), ("b/y/1", 2400.0), ("c/z/1", 50.0)]);
        let (trends, _, _) = compare(&current, &reference);
        let b = trends.iter().find(|t| t.group == "b").unwrap();
        assert!(b.normalized > 5.0, "normalized {}", b.normalized);
        assert!(trends
            .iter()
            .filter(|t| t.group != "b")
            .all(|t| t.normalized <= 5.0));
    }

    #[test]
    fn groups_sum_their_benches_and_ignore_unmatched_ids() {
        let reference = doc(&[("a/x/1", 100.0), ("a/x/2", 300.0), ("gone/x/1", 9.0)]);
        let current = doc(&[("a/x/1", 150.0), ("a/x/2", 250.0), ("new/x/1", 7.0)]);
        let (trends, only_cur, only_ref) = compare(&current, &reference);
        assert_eq!(trends.len(), 1);
        assert!((trends[0].ratio - 1.0).abs() < 1e-9); // 400 vs 400
        assert_eq!(only_cur, vec!["new/x/1".to_string()]);
        assert_eq!(only_ref, vec!["gone/x/1".to_string()]);
    }

    #[test]
    fn cli_rejects_bad_usage() {
        assert!(run(&[]).is_err());
        assert!(run(&["a".into()]).is_err());
        assert!(run(&["a".into(), "b".into(), "--max-ratio".into()]).is_err());
    }
}
