//! The scenario-sweep CLI.
//!
//! ```text
//! sweep [OPTIONS]
//!   --check            diff RESULTS.json against the golden baseline and
//!                      exit non-zero on any drift
//!   --update-golden    regenerate the golden baseline from this run
//!   --threads N        worker threads (default: all cores)
//!   --shards N         run on the sharded executor: a static round-robin
//!                      partition of scenarios (and intra-scenario sweep
//!                      points) over N threads with an index-keyed merge;
//!                      output is shard-count-independent (0 = classic
//!                      thread pool, the default)
//!   --seed N           dispatch-order seed (output is seed-independent)
//!   --filter SUBSTR    only run scenarios whose name or group contains
//!                      SUBSTR (e.g. --filter eviction for the policy
//!                      comparison group); composes with --list
//!   --out PATH         where to write RESULTS.json (default: RESULTS.json)
//!   --golden PATH      golden baseline path (default: baselines/golden.json)
//!   --check-frozen P   additionally require every metric of the frozen
//!                      reference P (a past golden) to be bit-identical in
//!                      this run; metrics/scenarios added since are ignored.
//!                      The proof a scenario-adding PR must carry: the
//!                      regenerated golden did not move pre-existing
//!                      predictions
//!   --timings          include machine-dependent wall-clock timings in the
//!                      output (breaks bit-identical output; never gated)
//!   --list             list registered scenarios and exit
//! ```
//!
//! Exit codes: 0 on success, 1 on scenario failure or golden drift, 2 on
//! usage or I/O errors.

use std::process::ExitCode;

use harness::{
    compare, compare_intersection_exact, make_golden, parse, registry, run_sweep, SweepConfig,
};

struct Options {
    check: bool,
    check_frozen: Option<String>,
    update_golden: bool,
    list: bool,
    timings: bool,
    out: String,
    golden: String,
    config: SweepConfig,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        check: false,
        check_frozen: None,
        update_golden: false,
        list: false,
        timings: false,
        out: "RESULTS.json".to_string(),
        golden: "baselines/golden.json".to_string(),
        config: SweepConfig::default(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--check" => opts.check = true,
            "--check-frozen" => opts.check_frozen = Some(value("--check-frozen")?),
            "--update-golden" => opts.update_golden = true,
            "--list" => opts.list = true,
            "--timings" => opts.timings = true,
            "--threads" => {
                opts.config.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("invalid --threads: {e}"))?
            }
            "--seed" => {
                opts.config.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("invalid --seed: {e}"))?
            }
            "--shards" => {
                opts.config.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("invalid --shards: {e}"))?
            }
            "--filter" => opts.config.filter = Some(value("--filter")?),
            "--out" => opts.out = value("--out")?,
            "--golden" => opts.golden = value("--golden")?,
            "--help" | "-h" => {
                print!("{}", HELP);
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    if opts.check && opts.update_golden {
        return Err("--check and --update-golden are mutually exclusive".to_string());
    }
    if opts.update_golden && opts.config.filter.is_some() {
        // make_golden() replaces the scenarios section wholesale; a filtered
        // run would silently truncate the baseline to the filtered subset.
        return Err("--update-golden requires a full run; drop --filter".to_string());
    }
    Ok(opts)
}

const HELP: &str = "\
Usage: sweep [--check | --update-golden] [--check-frozen PATH] [--threads N]
             [--shards N] [--seed N] [--filter SUBSTR] [--out PATH]
             [--golden PATH] [--timings] [--list]

Runs every registered scenario in parallel, writes RESULTS.json, and (with
--check) fails on out-of-tolerance drift from the golden baseline.
";

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("sweep: {e}");
            return ExitCode::from(2);
        }
    };

    let scenarios = registry();
    if opts.list {
        let matches = |s: &dyn harness::Scenario| match &opts.config.filter {
            Some(f) => s.name().contains(f.as_str()) || s.group().contains(f.as_str()),
            None => true,
        };
        let listed: Vec<_> = scenarios.iter().filter(|s| matches(s.as_ref())).collect();
        match &opts.config.filter {
            Some(f) => println!(
                "{} of {} registered scenarios match --filter {f:?}:",
                listed.len(),
                scenarios.len()
            ),
            None => println!("{} registered scenarios:", listed.len()),
        }
        for s in listed {
            println!("  [{:<8}] {:<32} {}", s.group(), s.name(), s.description());
        }
        return ExitCode::SUCCESS;
    }

    if opts.config.shards > 0 {
        eprintln!(
            "running {} scenarios on the sharded executor, {} shards (seed {})",
            scenarios.len(),
            opts.config.shards,
            opts.config.seed
        );
    } else {
        eprintln!(
            "running {} scenarios on {} threads (seed {})",
            scenarios.len(),
            opts.config.threads,
            opts.config.seed
        );
    }
    let results = run_sweep(&scenarios, &opts.config);
    for s in &results.scenarios {
        match &s.outcome {
            Ok(m) => eprintln!(
                "  ok   {:<32} {:>4} metrics  {:>7.2}s",
                s.name,
                m.len(),
                s.wall_clock_seconds
            ),
            Err(e) => eprintln!("  FAIL {:<32} {e}", s.name),
        }
    }
    eprintln!(
        "total scenario wall-clock: {:.2}s",
        results.total_wall_clock()
    );

    if !results.all_ok() {
        eprintln!("sweep: {} scenario(s) failed", results.failures().len());
        return ExitCode::FAILURE;
    }

    let doc = results.to_json(opts.timings);
    if let Err(e) = std::fs::write(&opts.out, doc.render_pretty()) {
        eprintln!("sweep: cannot write {}: {e}", opts.out);
        return ExitCode::from(2);
    }
    eprintln!("wrote {}", opts.out);

    // The frozen bit-identity check runs first so it composes with both
    // --check and --update-golden: a regeneration that moved pre-existing
    // predictions fails here *before* the new golden is written.
    if let Some(frozen_path) = &opts.check_frozen {
        let frozen = match std::fs::read_to_string(frozen_path)
            .map_err(|e| e.to_string())
            .and_then(|text| parse(&text))
        {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("sweep: cannot read frozen reference {frozen_path}: {e}");
                return ExitCode::from(2);
            }
        };
        match compare_intersection_exact(&frozen, &results.to_json(false)) {
            Ok(drifts) if drifts.is_empty() => {
                eprintln!("frozen check passed: every {frozen_path} metric is bit-identical");
            }
            Ok(drifts) => {
                eprintln!(
                    "frozen check FAILED: {} pre-existing metric(s) moved or vanished",
                    drifts.len()
                );
                for d in &drifts {
                    eprintln!("  {d}");
                }
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("sweep: cannot compare against frozen reference: {e}");
                return ExitCode::from(2);
            }
        }
    }

    if opts.update_golden {
        let previous = std::fs::read_to_string(&opts.golden)
            .ok()
            .and_then(|text| parse(&text).ok());
        let golden = make_golden(&results.to_json(false), previous.as_ref());
        if let Some(dir) = std::path::Path::new(&opts.golden).parent() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("sweep: cannot create {}: {e}", dir.display());
                return ExitCode::from(2);
            }
        }
        if let Err(e) = std::fs::write(&opts.golden, golden.render_pretty()) {
            eprintln!("sweep: cannot write {}: {e}", opts.golden);
            return ExitCode::from(2);
        }
        eprintln!("updated golden baseline {}", opts.golden);
        return ExitCode::SUCCESS;
    }

    if opts.check {
        let golden_text = match std::fs::read_to_string(&opts.golden) {
            Ok(text) => text,
            Err(e) => {
                eprintln!(
                    "sweep: cannot read golden baseline {} ({e}); \
                     generate it with --update-golden",
                    opts.golden
                );
                return ExitCode::from(2);
            }
        };
        let golden = match parse(&golden_text) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("sweep: golden baseline {} is malformed: {e}", opts.golden);
                return ExitCode::from(2);
            }
        };
        match compare(&golden, &results.to_json(false)) {
            Ok(drifts) if drifts.is_empty() => {
                eprintln!("golden check passed: no drift from {}", opts.golden);
            }
            Ok(drifts) => {
                eprintln!("golden check FAILED: {} drift(s)", drifts.len());
                for d in &drifts {
                    eprintln!("  {d}");
                }
                eprintln!(
                    "If this change is intentional, regenerate the baseline in the same \
                     commit with scripts/sweep.sh --update-golden and explain why."
                );
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("sweep: cannot compare against golden: {e}");
                return ExitCode::from(2);
            }
        }
    }

    ExitCode::SUCCESS
}
