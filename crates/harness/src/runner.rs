//! The parallel sweep runner.
//!
//! Scenarios fan out across `std::thread` workers. Each scenario builds and
//! runs its own single-threaded DES engine (the engine is `Rc<RefCell<_>>`
//! based and deliberately `!Send`), so parallelism lives strictly *between*
//! scenarios: a worker picks the next index off a shared cursor, runs the
//! scenario to completion on its own thread, and records `(index, result)`.
//!
//! Determinism: results are collected keyed by **registry index** and sorted
//! before serialization, so `RESULTS.json` is bit-identical for any thread
//! count. The seed only shuffles the *dispatch order* (via a xorshift
//! Fisher–Yates pass), which lets the test suite prove order independence:
//! any `(threads, seed)` combination must produce the same bytes.
//!
//! With `shards > 0` the cursor pool is replaced by the sharded executor
//! ([`crate::shard::run_sharded`]): a *static* round-robin partition of
//! scenarios over threads with an index-keyed merge, and the same shard count
//! is propagated to intra-scenario point sweeps
//! ([`crate::shard::set_point_shards`]). The output is byte-identical either
//! way — the determinism suite proves `--shards 1/2/8` all match the thread
//! pool.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::json::Json;
use crate::scenario::{Metrics, Scenario};
use crate::shard;

/// Configuration of one sweep run.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Number of worker threads (at least 1).
    pub threads: usize,
    /// Seed for the dispatch-order shuffle. Must not change the output.
    pub seed: u64,
    /// Only run scenarios whose name or group contains this substring
    /// (`eviction` selects the whole policy-comparison group).
    pub filter: Option<String>,
    /// When non-zero, run scenarios on the sharded executor with this many
    /// shards (static round-robin partition) instead of the work-stealing
    /// thread pool, and let registry point sweeps shard internally by the
    /// same count. Must not change the output.
    pub shards: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            seed: 0,
            filter: None,
            shards: 0,
        }
    }
}

/// Outcome of one scenario within a sweep.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Scenario name.
    pub name: String,
    /// Scenario group.
    pub group: String,
    /// The metrics, or the error message if the scenario failed.
    pub outcome: Result<Metrics, String>,
    /// Wall-clock seconds the scenario took (informational only; never part
    /// of the deterministic output).
    pub wall_clock_seconds: f64,
}

/// All results of a sweep, in registry order.
#[derive(Debug, Clone, Default)]
pub struct SweepResults {
    /// Per-scenario results, ordered by registry index.
    pub scenarios: Vec<ScenarioResult>,
}

impl SweepResults {
    /// Whether every scenario completed successfully.
    pub fn all_ok(&self) -> bool {
        self.scenarios.iter().all(|s| s.outcome.is_ok())
    }

    /// The failed scenarios as `(name, error)` pairs.
    pub fn failures(&self) -> Vec<(&str, &str)> {
        self.scenarios
            .iter()
            .filter_map(|s| match &s.outcome {
                Ok(_) => None,
                Err(e) => Some((s.name.as_str(), e.as_str())),
            })
            .collect()
    }

    /// Total wall-clock seconds summed over scenarios.
    pub fn total_wall_clock(&self) -> f64 {
        self.scenarios.iter().map(|s| s.wall_clock_seconds).sum()
    }

    /// The deterministic result document: schema version plus, per scenario,
    /// its group and metric map. Failed scenarios are *not* representable —
    /// callers must check [`SweepResults::all_ok`] first.
    ///
    /// With `timings`, a machine-dependent `timings` section (wall-clock per
    /// scenario) is appended; golden comparisons always ignore it.
    pub fn to_json(&self, timings: bool) -> Json {
        let mut scenarios = Vec::new();
        for s in &self.scenarios {
            let metrics = match &s.outcome {
                Ok(m) => m,
                Err(_) => continue,
            };
            let metric_pairs = metrics
                .entries()
                .iter()
                .map(|(k, v)| (k.clone(), Json::Num(*v)))
                .collect();
            scenarios.push((
                s.name.clone(),
                Json::obj(vec![
                    ("group".to_string(), Json::Str(s.group.clone())),
                    ("metrics".to_string(), Json::Obj(metric_pairs)),
                ]),
            ));
        }
        let mut doc = vec![
            ("version".to_string(), Json::Num(1.0)),
            ("scenarios".to_string(), Json::Obj(scenarios)),
        ];
        if timings {
            let t = self
                .scenarios
                .iter()
                .map(|s| (s.name.clone(), Json::Num(s.wall_clock_seconds)))
                .collect();
            doc.push(("timings".to_string(), Json::Obj(t)));
        }
        Json::obj(doc)
    }
}

/// A tiny xorshift64* PRNG — the workspace has no rand dependency.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.wrapping_mul(2685821657736338717).max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(2685821657736338717)
    }
}

/// Runs the scenarios of `registry` according to `config` and returns the
/// results in registry order.
pub fn run_sweep(registry: &[Box<dyn Scenario>], config: &SweepConfig) -> SweepResults {
    // Select, then shuffle the dispatch order with the seed. The shuffle
    // must not (and provably does not) affect the output: results are
    // re-keyed by index below.
    let selected: Vec<usize> = (0..registry.len())
        .filter(|&i| match &config.filter {
            Some(f) => {
                registry[i].name().contains(f.as_str()) || registry[i].group().contains(f.as_str())
            }
            None => true,
        })
        .collect();
    let mut order = selected.clone();
    let mut rng = XorShift::new(config.seed);
    for i in (1..order.len()).rev() {
        let j = (rng.next() % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }

    // (registry index, outcome, wall-clock seconds) of one finished scenario.
    type Slot = (usize, Result<Metrics, String>, f64);
    let run_one = |idx: usize| -> Slot {
        let start = Instant::now();
        // A panicking scenario must fail *that scenario*, not tear down the
        // whole sweep with it.
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| registry[idx].run()))
                .unwrap_or_else(|panic| {
                    let msg = panic
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| panic.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "scenario panicked".to_string());
                    Err(format!("panic: {msg}"))
                });
        (idx, outcome, start.elapsed().as_secs_f64())
    };

    let mut collected: Vec<Slot> = if config.shards > 0 {
        // Sharded executor: static round-robin partition, index-keyed merge.
        // Propagate the shard count to intra-scenario point sweeps.
        shard::set_point_shards(config.shards);
        let out = shard::run_sharded(order.len(), config.shards, |slot| run_one(order[slot]));
        shard::set_point_shards(1);
        out
    } else {
        // Classic pool: workers steal the next index off a shared cursor.
        let cursor = AtomicUsize::new(0);
        let collected: Mutex<Vec<Slot>> = Mutex::new(Vec::with_capacity(order.len()));
        let workers = config.threads.max(1).min(order.len().max(1));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let slot = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(&idx) = order.get(slot) else {
                        break;
                    };
                    collected.lock().unwrap().push(run_one(idx));
                });
            }
        });
        collected.into_inner().unwrap()
    };
    collected.sort_by_key(|(idx, _, _)| *idx);
    SweepResults {
        scenarios: collected
            .into_iter()
            .map(|(idx, outcome, wall_clock_seconds)| ScenarioResult {
                name: registry[idx].name().to_string(),
                group: registry[idx].group().to_string(),
                outcome,
                wall_clock_seconds,
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::FnScenario;

    fn fake_registry() -> Vec<Box<dyn Scenario>> {
        fn a() -> Result<Metrics, String> {
            let mut m = Metrics::new();
            m.push("x", 1.0);
            Ok(m)
        }
        fn b() -> Result<Metrics, String> {
            let mut m = Metrics::new();
            m.push("y", 2.0);
            Ok(m)
        }
        fn c() -> Result<Metrics, String> {
            Err("boom".to_string())
        }
        vec![
            Box::new(FnScenario {
                name: "alpha",
                group: "sweep",
                description: "",
                run: a,
            }),
            Box::new(FnScenario {
                name: "beta",
                group: "sweep",
                description: "",
                run: b,
            }),
            Box::new(FnScenario {
                name: "gamma_fails",
                group: "sweep",
                description: "",
                run: c,
            }),
        ]
    }

    #[test]
    fn results_are_in_registry_order_for_any_threads_and_seed() {
        let registry = fake_registry();
        let mut renderings = Vec::new();
        for (threads, seed) in [(1, 0), (4, 0), (2, 123456789)] {
            let results = run_sweep(
                &registry,
                &SweepConfig {
                    threads,
                    seed,
                    filter: None,
                    shards: 0,
                },
            );
            let names: Vec<&str> = results.scenarios.iter().map(|s| s.name.as_str()).collect();
            assert_eq!(names, ["alpha", "beta", "gamma_fails"]);
            assert!(!results.all_ok());
            assert_eq!(results.failures(), vec![("gamma_fails", "boom")]);
            renderings.push(results.to_json(false).render_pretty());
        }
        assert_eq!(renderings[0], renderings[1]);
        assert_eq!(renderings[1], renderings[2]);
    }

    #[test]
    fn panicking_scenario_is_reported_not_fatal() {
        fn panics() -> Result<Metrics, String> {
            panic!("scenario exploded");
        }
        fn ok() -> Result<Metrics, String> {
            Ok(Metrics::new())
        }
        let registry: Vec<Box<dyn Scenario>> = vec![
            Box::new(FnScenario {
                name: "bad",
                group: "sweep",
                description: "",
                run: panics,
            }),
            Box::new(FnScenario {
                name: "good",
                group: "sweep",
                description: "",
                run: ok,
            }),
        ];
        let results = run_sweep(&registry, &SweepConfig::default());
        assert_eq!(results.scenarios.len(), 2);
        assert!(!results.all_ok());
        let failures = results.failures();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].0, "bad");
        assert!(failures[0].1.contains("scenario exploded"), "{failures:?}");
        assert!(results.scenarios[1].outcome.is_ok());
    }

    #[test]
    fn filter_selects_by_substring() {
        let registry = fake_registry();
        let results = run_sweep(
            &registry,
            &SweepConfig {
                threads: 2,
                seed: 0,
                filter: Some("alpha".to_string()),
                shards: 0,
            },
        );
        assert_eq!(results.scenarios.len(), 1);
        assert!(results.all_ok());
        assert!(results.total_wall_clock() >= 0.0);
    }

    #[test]
    fn filter_also_matches_the_group_name() {
        let registry = fake_registry();
        // Every fake scenario is in the "sweep" group; a group filter selects
        // them all even though no scenario *name* contains it.
        let results = run_sweep(
            &registry,
            &SweepConfig {
                threads: 2,
                seed: 0,
                filter: Some("sweep".to_string()),
                shards: 0,
            },
        );
        assert_eq!(results.scenarios.len(), 3);
    }

    #[test]
    fn sharded_executor_matches_the_thread_pool_bytes() {
        let registry = fake_registry();
        let reference = run_sweep(
            &registry,
            &SweepConfig {
                threads: 1,
                seed: 0,
                filter: None,
                shards: 0,
            },
        )
        .to_json(false)
        .render_pretty();
        for (shards, seed) in [(1, 0), (2, 99), (8, 7)] {
            let sharded = run_sweep(
                &registry,
                &SweepConfig {
                    threads: 1,
                    seed,
                    filter: None,
                    shards,
                },
            );
            let names: Vec<&str> = sharded.scenarios.iter().map(|s| s.name.as_str()).collect();
            assert_eq!(names, ["alpha", "beta", "gamma_fails"]);
            assert_eq!(
                sharded.to_json(false).render_pretty(),
                reference,
                "shards={shards} seed={seed}"
            );
        }
    }

    #[test]
    fn timings_section_is_optional() {
        let registry = fake_registry();
        let results = run_sweep(&registry, &SweepConfig::default());
        let without = results.to_json(false);
        let with = results.to_json(true);
        assert!(without.get("timings").is_none());
        assert!(with.get("timings").is_some());
        // The deterministic core is identical either way.
        assert_eq!(without.get("scenarios"), with.get("scenarios"));
    }
}
