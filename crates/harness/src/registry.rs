//! The scenario registry: every figure and table of the paper, the
//! `examples/` workloads, and a set of synthetic parameter sweeps, wrapped as
//! deterministic [`Scenario`]s.
//!
//! All scenarios run proportionally scaled-down configurations (the `--quick`
//! scale of the report binaries) so the whole sweep finishes in seconds; the
//! error orderings and cache behaviours the paper reports are preserved at
//! this scale, as the `experiments` test suite verifies. Wall-clock derived
//! numbers (Fig. 8's y-axis) are replaced by their deterministic counterpart
//! (simulated virtual time), because golden baselines must be
//! machine-independent.

use experiments::platform::scaled_platform;
use experiments::{run_exp1_for_size, run_exp2, run_exp3, run_exp4};
use storage_model::units::{GB, MB};
use workflow::net::{primary_server, server_host, server_link};
use workflow::{
    run_scenario, ApplicationSpec, ClientPolicy, ErrorMode, EvictionPolicy, FaultEvent, FaultPlan,
    FileSpec, FleetSpec, IoErrorSpec, Op, OpClass, PlatformSpec, RetryPolicy, RunStats,
    Scenario as WorkflowScenario, ScenarioReport, SimulatorKind, TaskSpec, TenantSpec,
    TrafficGenReport, TrafficSpec,
};

use crate::scenario::{FnScenario, Metrics, Scenario};
use crate::shard::run_points;

/// Builds the full scenario registry, in the canonical (output) order.
pub fn registry() -> Vec<Box<dyn Scenario>> {
    let scenarios: Vec<FnScenario> = vec![
        FnScenario {
            name: "table1_synthetic_parameters",
            group: "paper",
            description: "Table I: synthetic application CPU time vs input size",
            run: table1,
        },
        FnScenario {
            name: "table2_nighres_parameters",
            group: "paper",
            description: "Table II: Nighres step input/output sizes and CPU times",
            run: table2,
        },
        FnScenario {
            name: "table3_bandwidths",
            group: "paper",
            description: "Table III: measured and simulated device bandwidths",
            run: table3,
        },
        FnScenario {
            name: "fig4a_exp1_errors",
            group: "paper",
            description: "Fig. 4a: per-phase I/O times and errors of Exp 1",
            run: fig4a,
        },
        FnScenario {
            name: "fig4b_memory_profiles",
            group: "paper",
            description: "Fig. 4b: memory profile peaks of Exp 1",
            run: fig4b,
        },
        FnScenario {
            name: "fig4c_cache_contents",
            group: "paper",
            description: "Fig. 4c: cache content after each I/O phase of Exp 1",
            run: fig4c,
        },
        FnScenario {
            name: "fig5_exp2_concurrent_local",
            group: "paper",
            description: "Fig. 5: concurrent instances on local storage (Exp 2)",
            run: fig5,
        },
        FnScenario {
            name: "fig6_exp4_nighres",
            group: "paper",
            description: "Fig. 6: Nighres per-phase times and errors (Exp 4)",
            run: fig6,
        },
        FnScenario {
            name: "fig7_exp3_concurrent_nfs",
            group: "paper",
            description: "Fig. 7: concurrent instances on NFS storage (Exp 3)",
            run: fig7,
        },
        FnScenario {
            name: "fig8_simulated_durations",
            group: "paper",
            description: "Fig. 8 configurations, gated on simulated virtual time",
            run: fig8,
        },
        FnScenario {
            name: "example_quickstart",
            group: "examples",
            description: "examples/quickstart.rs: double read, cacheless vs cached",
            run: example_quickstart,
        },
        FnScenario {
            name: "example_synthetic_pipeline",
            group: "examples",
            description: "examples/synthetic_pipeline.rs: 3-task pipeline, all back-ends",
            run: example_synthetic_pipeline,
        },
        FnScenario {
            name: "example_nighres_workflow",
            group: "examples",
            description: "examples/nighres_workflow.rs: Nighres on a 16 GB node",
            run: example_nighres_workflow,
        },
        FnScenario {
            name: "example_nfs_cluster",
            group: "examples",
            description: "examples/nfs_cluster.rs: pipelines against an NFS server",
            run: example_nfs_cluster,
        },
        FnScenario {
            name: "example_concurrent_instances",
            group: "examples",
            description: "examples/concurrent_instances.rs: contention plateau",
            run: example_concurrent_instances,
        },
        FnScenario {
            name: "example_database_workload",
            group: "examples",
            description: "examples/database_workload.rs: commit loop (Repeat+Fsync) + checkpoint",
            run: example_database_workload,
        },
        FnScenario {
            name: "prog_database_fsync",
            group: "programs",
            description: "CAWL-style interleaved small writes + fsync, all four back-ends",
            run: prog_database_fsync,
        },
        FnScenario {
            name: "prog_random_partial_reread",
            group: "programs",
            description: "random 64 MB partial re-reads at several cache-to-working-set ratios",
            run: prog_random_partial_reread,
        },
        FnScenario {
            name: "prog_scan_then_reread",
            group: "programs",
            description: "full scan followed by repeated hot-set re-reads, all four back-ends",
            run: prog_scan_then_reread,
        },
        FnScenario {
            name: "prog_fsync_storm",
            group: "programs",
            description: "many small files written and fsync'd back to back",
            run: prog_fsync_storm,
        },
        FnScenario {
            name: "prog_strided_reads",
            group: "programs",
            description: "strided read passes at several strides, model vs emulator hit ratios",
            run: prog_strided_reads,
        },
        FnScenario {
            name: "prog_seq_random_switch",
            group: "programs",
            description: "sequential-random-sequential mode switches under readahead",
            run: prog_seq_random_switch,
        },
        FnScenario {
            name: "prog_write_burst_throttle",
            group: "programs",
            description: "write bursts straddling the dirty thresholds, paced vs unpaced",
            run: prog_write_burst_throttle,
        },
        FnScenario {
            name: "sweep_dirty_ratio",
            group: "sweep",
            description: "write behaviour across vm.dirty_ratio / dirty_background_ratio",
            run: sweep_dirty_ratio,
        },
        FnScenario {
            name: "sweep_cache_size",
            group: "sweep",
            description: "hit ratio and makespan across host memory sizes",
            run: sweep_cache_size,
        },
        FnScenario {
            name: "sweep_rw_mix",
            group: "sweep",
            description: "makespan and write routing across read/write mixes",
            run: sweep_rw_mix,
        },
        FnScenario {
            name: "sweep_concurrency",
            group: "sweep",
            description: "read/write contention across concurrent-instance counts",
            run: sweep_concurrency,
        },
        FnScenario {
            name: "sweep_readahead_window",
            group: "sweep",
            description: "sequential scan + re-read across readahead window sizes",
            run: sweep_readahead_window,
        },
        FnScenario {
            name: "sweep_throttle_pacing",
            group: "sweep",
            description: "write-burst behaviour across balance_dirty_pages pacing strengths",
            run: sweep_throttle_pacing,
        },
        FnScenario {
            name: "sweep_eviction_policy_reread",
            group: "eviction",
            description: "hot-set re-reads between one-shot scans, per replacement policy",
            run: sweep_eviction_policy_reread,
        },
        FnScenario {
            name: "sweep_eviction_policy_strided",
            group: "eviction",
            description: "repeated strided read passes under pressure, per replacement policy",
            run: sweep_eviction_policy_strided,
        },
        FnScenario {
            name: "sweep_eviction_policy_write_burst",
            group: "eviction",
            description: "write bursts straddling the dirty thresholds, per replacement policy",
            run: sweep_eviction_policy_write_burst,
        },
        FnScenario {
            name: "fault_crash_before_fsync_database",
            group: "faults",
            description: "power loss before the fsync: the unflushed WAL record is lost",
            run: fault_crash_before_fsync_database,
        },
        FnScenario {
            name: "fault_crash_after_fsync_database",
            group: "faults",
            description: "power loss after the fsync: the committed WAL record survives",
            run: fault_crash_after_fsync_database,
        },
        FnScenario {
            name: "fault_writeback_storm_crash",
            group: "faults",
            description: "crash mid-writeback: a durable prefix survives, then a restart pass",
            run: fault_writeback_storm_crash,
        },
        FnScenario {
            name: "fault_nfs_outage_retry_storm",
            group: "faults",
            description: "a transient NFS outage ridden out by retrying tasks with backoff",
            run: fault_nfs_outage_retry_storm,
        },
        FnScenario {
            name: "fault_eio_degraded",
            group: "faults",
            description: "persistent EIO on one output file: degraded completion, others finish",
            run: fault_eio_degraded,
        },
        FnScenario {
            name: "fault_retry_backoff_sweep",
            group: "faults",
            description: "one transient write error across exponential-backoff strengths",
            run: fault_retry_backoff_sweep,
        },
        FnScenario {
            name: "netf_partition_stampede",
            group: "net_faults",
            description: "hot-file cache stampede while a partition cuts half the fleet's clients",
            run: netf_partition_stampede,
        },
        FnScenario {
            name: "netf_server_crash_failover",
            group: "net_faults",
            description: "a replica server crashes mid write-back storm; reads fail over",
            run: netf_server_crash_failover,
        },
        FnScenario {
            name: "netf_flapping_link_retry_storm",
            group: "net_faults",
            description: "flapping server links ridden out by timeout + backoff clients",
            run: netf_flapping_link_retry_storm,
        },
        FnScenario {
            name: "traffic_zipf_steady_state",
            group: "traffic",
            description: "open-loop Zipf(1) request serving on both cached back-ends",
            run: traffic_zipf_steady_state,
        },
        FnScenario {
            name: "traffic_open_vs_closed_saturation",
            group: "traffic",
            description:
                "open loop past capacity piles queueing into the tail; closed loop self-throttles",
            run: traffic_open_vs_closed_saturation,
        },
        FnScenario {
            name: "traffic_cache_pressure_tail_latency",
            group: "traffic",
            description: "read p99 degrades when the Zipf hot set exceeds the tenant's cache limit",
            run: traffic_cache_pressure_tail_latency,
        },
        FnScenario {
            name: "traffic_noisy_neighbor_isolation",
            group: "traffic",
            description:
                "an uncapped ingest hog dirty-throttles the whole host unless memcg-style limits pin it",
            run: traffic_noisy_neighbor_isolation,
        },
    ];
    scenarios
        .into_iter()
        .map(|s| Box::new(s) as Box<dyn Scenario>)
        .collect()
}

fn err(e: impl std::fmt::Display) -> String {
    e.to_string()
}

/// `"Read 1"` → `"read_1"` — metric keys are lowercase snake case.
fn key(label: &str) -> String {
    label.to_lowercase().replace(' ', "_")
}

/// Records the [`RunStats`] block of a report under a prefix.
fn push_run_stats(m: &mut Metrics, prefix: &str, stats: &RunStats) {
    m.push(format!("{prefix}/bytes_from_disk"), stats.bytes_from_disk);
    m.push(format!("{prefix}/bytes_from_cache"), stats.bytes_from_cache);
    m.push(format!("{prefix}/bytes_to_disk"), stats.bytes_to_disk);
    m.push(format!("{prefix}/cache_hit_ratio"), stats.cache_hit_ratio);
    m.push(format!("{prefix}/peak_cached"), stats.peak_cached);
    m.push(format!("{prefix}/peak_dirty"), stats.peak_dirty);
}

fn run(
    platform: &PlatformSpec,
    app: &ApplicationSpec,
    kind: SimulatorKind,
    instances: usize,
) -> Result<ScenarioReport, String> {
    let mut scenario = WorkflowScenario::new(platform.clone(), app.clone(), kind);
    if instances > 1 {
        scenario = scenario
            .with_instances(instances)
            .map_err(err)?
            .with_sample_interval(None);
    }
    run_scenario(&scenario).map_err(err)
}

// ---------------------------------------------------------------------------
// Paper tables and figures
// ---------------------------------------------------------------------------

fn table1() -> Result<Metrics, String> {
    let mut m = Metrics::new();
    for gb in [3.0, 20.0, 50.0, 75.0, 100.0] {
        m.push(
            format!("cpu_time_s/{gb:.0}gb"),
            ApplicationSpec::synthetic_cpu_time(gb * GB),
        );
    }
    Ok(m)
}

fn table2() -> Result<Metrics, String> {
    let mut m = Metrics::new();
    for task in &ApplicationSpec::nighres().tasks {
        let step = key(&task.name);
        m.push(format!("{step}/input_bytes"), task.input_bytes());
        m.push(format!("{step}/output_bytes"), task.output_bytes());
        m.push(format!("{step}/cpu_time_s"), task.cpu_time);
    }
    Ok(m)
}

fn table3() -> Result<Metrics, String> {
    use experiments::platform::{measured, simulated};
    let mut m = Metrics::new();
    m.push("measured/memory_read_mbps", measured::MEMORY_READ);
    m.push("measured/memory_write_mbps", measured::MEMORY_WRITE);
    m.push("measured/local_disk_read_mbps", measured::LOCAL_DISK_READ);
    m.push("measured/local_disk_write_mbps", measured::LOCAL_DISK_WRITE);
    m.push("measured/remote_disk_read_mbps", measured::REMOTE_DISK_READ);
    m.push(
        "measured/remote_disk_write_mbps",
        measured::REMOTE_DISK_WRITE,
    );
    m.push("measured/network_mbps", measured::NETWORK);
    m.push("simulated/memory_mbps", simulated::MEMORY);
    m.push("simulated/local_disk_mbps", simulated::LOCAL_DISK);
    m.push("simulated/remote_disk_mbps", simulated::REMOTE_DISK);
    m.push("simulated/network_mbps", simulated::NETWORK);
    Ok(m)
}

/// Plain-data projection of one Exp 1 run: everything fig4a/b/c report,
/// without the `Rc`-based types of the full result, so it can live in a
/// `OnceLock` shared across worker threads.
#[derive(Clone)]
struct Exp1Summary {
    /// (label, real, prototype, cacheless, wrench_cache) per phase.
    phases: Vec<(String, f64, f64, f64, f64)>,
    /// (prototype, cacheless, wrench_cache) mean errors, percent.
    mean_errors: (f64, f64, f64),
    /// (label, max_used, max_cached, max_dirty, samples) per memory trace.
    traces: Vec<(&'static str, f64, f64, f64, f64)>,
    /// (simulator label, snapshot label, total bytes, file count) per
    /// cache-content snapshot.
    snapshots: Vec<(&'static str, String, f64, f64)>,
}

/// Exp 1 at harness scale: 2 GB files on a 16 GB node. Three scenarios
/// (fig4a/b/c) report different views of this one experiment, so the run is
/// computed once and shared — it is deterministic, so whichever worker gets
/// there first produces the same result.
fn exp1_summary() -> Result<Exp1Summary, String> {
    static EXP1: std::sync::OnceLock<Result<Exp1Summary, String>> = std::sync::OnceLock::new();
    EXP1.get_or_init(|| {
        let result = run_exp1_for_size(&scaled_platform(16.0 * GB), 2.0 * GB).map_err(err)?;
        let mut traces = Vec::new();
        for (label, trace) in [
            ("real", &result.real_trace),
            ("prototype", &result.prototype_trace),
            ("wrench_cache", &result.wrench_cache_trace),
        ] {
            let trace = trace
                .as_ref()
                .ok_or_else(|| format!("{label} trace missing"))?;
            traces.push((
                label,
                trace.max_used(),
                trace.max_cached(),
                trace.max_dirty(),
                trace.len() as f64,
            ));
        }
        let mut snapshots = Vec::new();
        for (label, snaps) in [
            ("real", &result.real_snapshots),
            ("wrench_cache", &result.wrench_cache_snapshots),
        ] {
            for snap in snaps {
                snapshots.push((
                    label,
                    snap.label.clone(),
                    snap.total(),
                    snap.per_file.len() as f64,
                ));
            }
        }
        Ok(Exp1Summary {
            phases: result
                .phases
                .iter()
                .map(|p| {
                    (
                        p.label.clone(),
                        p.real,
                        p.prototype,
                        p.cacheless,
                        p.wrench_cache,
                    )
                })
                .collect(),
            mean_errors: (
                result.mean_error_prototype(),
                result.mean_error_cacheless(),
                result.mean_error_wrench_cache(),
            ),
            traces,
            snapshots,
        })
    })
    .clone()
}

fn fig4a() -> Result<Metrics, String> {
    let result = exp1_summary()?;
    let mut m = Metrics::new();
    for (label, real, prototype, cacheless, wrench_cache) in &result.phases {
        let phase = key(label);
        m.push(format!("{phase}/real_s"), *real);
        m.push(format!("{phase}/prototype_s"), *prototype);
        m.push(format!("{phase}/cacheless_s"), *cacheless);
        m.push(format!("{phase}/wrench_cache_s"), *wrench_cache);
    }
    let (prototype, cacheless, wrench_cache) = result.mean_errors;
    m.push("mean_error_pct/prototype", prototype);
    m.push("mean_error_pct/cacheless", cacheless);
    m.push("mean_error_pct/wrench_cache", wrench_cache);
    Ok(m)
}

fn fig4b() -> Result<Metrics, String> {
    let result = exp1_summary()?;
    let mut m = Metrics::new();
    for (label, max_used, max_cached, max_dirty, samples) in &result.traces {
        m.push(format!("{label}/max_used"), *max_used);
        m.push(format!("{label}/max_cached"), *max_cached);
        m.push(format!("{label}/max_dirty"), *max_dirty);
        m.push(format!("{label}/samples"), *samples);
    }
    Ok(m)
}

fn fig4c() -> Result<Metrics, String> {
    let result = exp1_summary()?;
    let mut m = Metrics::new();
    for (simulator, label, total, files) in &result.snapshots {
        m.push(format!("{simulator}/{}/total", key(label)), *total);
        m.push(format!("{simulator}/{}/files", key(label)), *files);
    }
    Ok(m)
}

fn push_concurrency_sweep(m: &mut Metrics, sweep: &experiments::ConcurrencySweep) {
    for p in &sweep.points {
        let n = p.instances;
        m.push(format!("n{n:02}/real_read_s"), p.real_read);
        m.push(format!("n{n:02}/real_write_s"), p.real_write);
        m.push(format!("n{n:02}/cacheless_read_s"), p.cacheless_read);
        m.push(format!("n{n:02}/cacheless_write_s"), p.cacheless_write);
        m.push(format!("n{n:02}/cache_read_s"), p.cache_read);
        m.push(format!("n{n:02}/cache_write_s"), p.cache_write);
    }
}

fn fig5() -> Result<Metrics, String> {
    let sweep = run_exp2(&scaled_platform(32.0 * GB), 1.0 * GB, &[1, 4, 8]).map_err(err)?;
    let mut m = Metrics::new();
    push_concurrency_sweep(&mut m, &sweep);
    Ok(m)
}

fn fig6() -> Result<Metrics, String> {
    let result = run_exp4(&scaled_platform(16.0 * GB)).map_err(err)?;
    let mut m = Metrics::new();
    for p in &result.phases {
        let phase = key(&p.label);
        m.push(format!("{phase}/real_s"), p.real);
        m.push(format!("{phase}/cacheless_s"), p.cacheless);
        m.push(format!("{phase}/wrench_cache_s"), p.wrench_cache);
    }
    m.push("mean_error_pct/cacheless", result.mean_error_cacheless());
    m.push(
        "mean_error_pct/wrench_cache",
        result.mean_error_wrench_cache(),
    );
    Ok(m)
}

fn fig7() -> Result<Metrics, String> {
    let sweep = run_exp3(&scaled_platform(32.0 * GB), 1.0 * GB, &[1, 4, 8]).map_err(err)?;
    let mut m = Metrics::new();
    push_concurrency_sweep(&mut m, &sweep);
    Ok(m)
}

/// Fig. 8's wall-clock y-axis is machine-dependent, so the gated metric here
/// is the *simulated* duration of each of its four configurations — a
/// deterministic proxy that still catches behavioural drift in every
/// configuration Fig. 8 measures.
fn fig8() -> Result<Metrics, String> {
    let platform = scaled_platform(32.0 * GB);
    let app = ApplicationSpec::synthetic_pipeline(1.0 * GB);
    let mut m = Metrics::new();
    for instances in [1usize, 2, 4, 8] {
        for (label, kind, nfs) in [
            ("cacheless_local", SimulatorKind::Cacheless, false),
            ("cacheless_nfs", SimulatorKind::Cacheless, true),
            ("cache_local", SimulatorKind::PageCache, false),
            ("cache_nfs", SimulatorKind::PageCache, true),
        ] {
            let platform = if nfs {
                platform.clone().with_nfs()
            } else {
                platform.clone()
            };
            let report = run_scenario(
                &WorkflowScenario::new(platform, app.clone(), kind)
                    .with_instances(instances)
                    .map_err(err)?
                    .with_sample_interval(None),
            )
            .map_err(err)?;
            m.push(
                format!("n{instances:02}/{label}/simulated_s"),
                report.simulated_duration,
            );
        }
    }
    Ok(m)
}

// ---------------------------------------------------------------------------
// The examples/ workloads
// ---------------------------------------------------------------------------

fn uniform_platform(memory: f64) -> PlatformSpec {
    PlatformSpec::uniform(
        memory,
        storage_model::DeviceSpec::symmetric(4812.0 * MB, 0.0, f64::INFINITY),
        storage_model::DeviceSpec::symmetric(465.0 * MB, 0.0, f64::INFINITY),
    )
}

fn example_quickstart() -> Result<Metrics, String> {
    let platform = uniform_platform(8.0 * GB);
    let input = FileSpec::new("input.dat", 2.0 * GB);
    let app = ApplicationSpec::new("quickstart")
        .with_initial_file(input.clone())
        .with_task(TaskSpec::new("first read", 1.0).reads(input.clone()))
        .with_task(TaskSpec::new("second read", 1.0).reads(input));
    let mut m = Metrics::new();
    for (label, kind) in [
        ("cacheless", SimulatorKind::Cacheless),
        ("cache", SimulatorKind::PageCache),
    ] {
        let report = run(&platform, &app, kind, 1)?;
        let tasks = &report.instance_reports[0].tasks;
        m.push(format!("{label}/first_read_s"), tasks[0].read_time);
        m.push(format!("{label}/second_read_s"), tasks[1].read_time);
        m.push(
            format!("{label}/second_read_hit_ratio"),
            tasks[1].read_stats.cache_hit_ratio(),
        );
    }
    Ok(m)
}

fn example_synthetic_pipeline() -> Result<Metrics, String> {
    let platform = uniform_platform(16.0 * GB);
    let app = ApplicationSpec::synthetic_pipeline(4.0 * GB);
    let mut m = Metrics::new();
    for (label, kind) in [
        ("kernel_emu", SimulatorKind::KernelEmu),
        ("prototype", SimulatorKind::Prototype),
        ("cacheless", SimulatorKind::Cacheless),
        ("cache", SimulatorKind::PageCache),
    ] {
        let report = run(&platform, &app, kind, 1)?;
        m.push(format!("{label}/makespan_s"), report.mean_makespan());
        m.push(format!("{label}/read_s"), report.mean_total_read_time());
        m.push(format!("{label}/write_s"), report.mean_total_write_time());
    }
    Ok(m)
}

fn example_nighres_workflow() -> Result<Metrics, String> {
    let platform = uniform_platform(16.0 * GB);
    let app = ApplicationSpec::nighres();
    let mut m = Metrics::new();
    for (label, kind) in [
        ("kernel_emu", SimulatorKind::KernelEmu),
        ("cacheless", SimulatorKind::Cacheless),
        ("cache", SimulatorKind::PageCache),
    ] {
        let report = run(&platform, &app, kind, 1)?;
        m.push(format!("{label}/makespan_s"), report.mean_makespan());
        m.push(format!("{label}/read_s"), report.mean_total_read_time());
        m.push(format!("{label}/write_s"), report.mean_total_write_time());
    }
    Ok(m)
}

fn example_nfs_cluster() -> Result<Metrics, String> {
    let platform = uniform_platform(32.0 * GB).with_nfs();
    let app = ApplicationSpec::synthetic_pipeline(1.0 * GB);
    let mut m = Metrics::new();
    for instances in [1usize, 4] {
        for (label, kind) in [
            ("cacheless", SimulatorKind::Cacheless),
            ("cache", SimulatorKind::PageCache),
        ] {
            let report = run(&platform, &app, kind, instances)?;
            m.push(
                format!("n{instances:02}/{label}/read_s"),
                report.mean_total_read_time(),
            );
            m.push(
                format!("n{instances:02}/{label}/write_s"),
                report.mean_total_write_time(),
            );
        }
    }
    Ok(m)
}

fn example_concurrent_instances() -> Result<Metrics, String> {
    let platform = uniform_platform(32.0 * GB);
    let app = ApplicationSpec::synthetic_pipeline(1.0 * GB);
    let mut m = Metrics::new();
    for instances in [1usize, 4, 8] {
        for (label, kind) in [
            ("cacheless", SimulatorKind::Cacheless),
            ("cache", SimulatorKind::PageCache),
        ] {
            let report = run(&platform, &app, kind, instances)?;
            m.push(
                format!("n{instances:02}/{label}/read_s"),
                report.mean_total_read_time(),
            );
            m.push(
                format!("n{instances:02}/{label}/write_s"),
                report.mean_total_write_time(),
            );
        }
    }
    Ok(m)
}

// ---------------------------------------------------------------------------
// Workload-program scenarios (offset I/O, fsync, repetition)
// ---------------------------------------------------------------------------

/// Tiny xorshift PRNG so program scenarios can draw deterministic offsets
/// without any ambient state (same generator family as the sweep runner).
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// A float in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The four local back-ends with their metric labels.
const ALL_KINDS: [(&str, SimulatorKind); 4] = [
    ("cacheless", SimulatorKind::Cacheless),
    ("prototype", SimulatorKind::Prototype),
    ("cache", SimulatorKind::PageCache),
    ("kernel_emu", SimulatorKind::KernelEmu),
];

/// CAWL-style "database": a commit loop rewriting a WAL record with an fsync
/// after every commit, then a checkpoint write and a final sync — small
/// interleaved writes whose cost is dominated by the synchronous writeback,
/// not the cache. Gated on all four back-ends.
fn prog_database_fsync() -> Result<Metrics, String> {
    let platform = scaled_platform(8.0 * GB);
    let record = 64.0 * MB;
    let app = ApplicationSpec::new("prog-database").with_task(TaskSpec::program(
        "commit loop",
        vec![
            Op::repeat(
                16,
                vec![
                    Op::write_range("wal", 0.0, record),
                    Op::fsync("wal"),
                    Op::compute(0.05),
                ],
            ),
            Op::write_range("table", 0.0, 512.0 * MB),
            Op::Sync,
        ],
    ));
    let mut m = Metrics::new();
    for (label, kind) in ALL_KINDS {
        let report = run(&platform, &app, kind, 1)?;
        let task = &report.instance_reports[0].tasks[0];
        m.push(format!("{label}/write_s"), task.write_time);
        m.push(
            format!("{label}/bytes_to_disk"),
            task.write_stats.bytes_to_disk,
        );
        m.push(format!("{label}/makespan_s"), report.mean_makespan());
        if let Some(wb) = report.writeback {
            m.push(
                format!("{label}/synchronous_flushed"),
                wb.synchronous_flushed,
            );
        }
    }
    Ok(m)
}

/// Random 64 MB partial re-reads of a 2 GB working set at three
/// cache-to-working-set ratios. Access-pattern-dependent eviction ("Cache is
/// King": scan vs. random diverge) makes the macroscopic model and the
/// kernel emulator legitimately different here — both are gated.
fn prog_random_partial_reread() -> Result<Metrics, String> {
    let working_set = 2.0 * GB;
    let request = 64.0 * MB;
    // A *streaming* scan (read a chunk, release its anonymous copy) warms
    // the cache up to roughly the host memory, so the cache-to-working-set
    // ratio — not the application's anonymous footprint — decides how much
    // of the working set stays resident.
    let mut ops = Vec::new();
    let chunks = (working_set / request) as usize;
    for i in 0..chunks {
        ops.push(Op::read_range("data", i as f64 * request, request));
        ops.push(Op::ReleaseMemory(request));
    }
    // Deterministic random offsets, shared by every platform/back-end so the
    // comparison is apples to apples.
    let mut rng = XorShift::new(0x5eed_cafe);
    for _ in 0..24 {
        let offset = (rng.next_f64() * (working_set - request) / MB).floor() * MB;
        ops.push(Op::read_range("data", offset, request));
        ops.push(Op::ReleaseMemory(request));
    }
    let app = ApplicationSpec::new("prog-random-reread")
        .with_initial_file(FileSpec::new("data", working_set))
        .with_task(TaskSpec::program("random re-reads", ops));
    let mut m = Metrics::new();
    for ratio_pct in [50u32, 100, 200] {
        let memory = working_set * ratio_pct as f64 / 100.0;
        let platform = scaled_platform(memory.max(1.0 * GB));
        for (label, kind) in [
            ("cache", SimulatorKind::PageCache),
            ("kernel_emu", SimulatorKind::KernelEmu),
        ] {
            let report = run(&platform, &app, kind, 1)?;
            let stats = report.run_stats();
            let prefix = format!("ratio_{ratio_pct:03}/{label}");
            m.push(format!("{prefix}/read_s"), report.mean_total_read_time());
            m.push(format!("{prefix}/hit_ratio"), stats.cache_hit_ratio);
            m.push(format!("{prefix}/bytes_from_disk"), stats.bytes_from_disk);
        }
    }
    Ok(m)
}

/// A full scan of a 3 GB file followed by four re-reads of its first 512 MB
/// — the scan-then-re-read pattern. Cached back-ends serve the hot set from
/// memory; the cacheless baseline pays disk bandwidth every time. Gated on
/// all four back-ends.
fn prog_scan_then_reread() -> Result<Metrics, String> {
    let file_size = 3.0 * GB;
    let hot = 512.0 * MB;
    let app = ApplicationSpec::new("prog-scan-reread")
        .with_initial_file(FileSpec::new("data", file_size))
        .with_task(TaskSpec::program(
            "scan",
            vec![Op::read("data"), Op::ReleaseMemory(file_size)],
        ))
        .with_task(TaskSpec::program(
            "hot set",
            vec![Op::repeat(
                4,
                vec![Op::read_range("data", 0.0, hot), Op::ReleaseMemory(hot)],
            )],
        ));
    let platform = scaled_platform(8.0 * GB);
    let mut m = Metrics::new();
    for (label, kind) in ALL_KINDS {
        let report = run(&platform, &app, kind, 1)?;
        m.push(format!("{label}/scan_s"), report.mean_task_read_time(0));
        m.push(format!("{label}/reread_s"), report.mean_task_read_time(1));
        let stats = report.run_stats();
        m.push(format!("{label}/hit_ratio"), stats.cache_hit_ratio);
    }
    Ok(m)
}

/// Sixteen small files written and fsync'd back to back (an "fsync storm"),
/// then one sync. Exercises the per-file dirty chains: every fsync flushes
/// only its own file.
fn prog_fsync_storm() -> Result<Metrics, String> {
    let file_size = 32.0 * MB;
    let mut ops = Vec::new();
    for i in 0..16 {
        ops.push(Op::write_range(format!("seg_{i:02}"), 0.0, file_size));
        ops.push(Op::fsync(format!("seg_{i:02}")));
    }
    ops.push(Op::Sync);
    let app = ApplicationSpec::new("prog-fsync-storm").with_task(TaskSpec::program("storm", ops));
    let platform = scaled_platform(8.0 * GB);
    let mut m = Metrics::new();
    for (label, kind) in [
        ("cache", SimulatorKind::PageCache),
        ("kernel_emu", SimulatorKind::KernelEmu),
    ] {
        let report = run(&platform, &app, kind, 1)?;
        let task = &report.instance_reports[0].tasks[0];
        m.push(format!("{label}/write_s"), task.write_time);
        m.push(
            format!("{label}/bytes_to_disk"),
            task.write_stats.bytes_to_disk,
        );
        let wb = report
            .writeback
            .ok_or_else(|| format!("{label} reported no writeback counters"))?;
        m.push(
            format!("{label}/synchronous_flushed"),
            wb.synchronous_flushed,
        );
        m.push(format!("{label}/background_flushed"), wb.background_flushed);
    }
    Ok(m)
}

/// A strided pass over `[0, file_size)`: `request` bytes every `stride`
/// bytes, each followed by a release of the anonymous copy so the cache —
/// not the application footprint — decides residency.
fn strided_pass(file: &str, file_size: f64, request: f64, stride: f64) -> Vec<Op> {
    let mut ops = Vec::new();
    let mut offset = 0.0;
    while offset + request <= file_size {
        ops.push(Op::read_range(file, offset, request));
        ops.push(Op::ReleaseMemory(request));
        offset += stride;
    }
    ops
}

/// Two identical strided passes over a 2 GB file at strides of 1×, 2× and
/// 4× the 64 MB request size. This is the access-pattern divergence the
/// kernel emulator's resident ranges were built to expose: on the re-read
/// pass the emulator hits exactly the strided ranges it kept (hit ratio → 1
/// for the touched bytes), while the amount-based macroscopic model still
/// sees an half-uncached file and keeps going to disk. Readahead is on, so
/// the contiguous stride additionally reports prefetched bytes and the
/// sparse strides prove the window stays collapsed.
fn prog_strided_reads() -> Result<Metrics, String> {
    let file_size = 2.0 * GB;
    let request = 64.0 * MB;
    let mut m = Metrics::new();
    for factor in [1u32, 2, 4] {
        let mut ops = strided_pass("data", file_size, request, factor as f64 * request);
        ops.extend(strided_pass(
            "data",
            file_size,
            request,
            factor as f64 * request,
        ));
        let app = ApplicationSpec::new("prog-strided")
            .with_initial_file(FileSpec::new("data", file_size))
            .with_task(TaskSpec::program("strided passes", ops));
        let platform = scaled_platform(8.0 * GB).with_readahead(32.0 * MB, 256.0 * MB);
        for (label, kind) in [
            ("cache", SimulatorKind::PageCache),
            ("kernel_emu", SimulatorKind::KernelEmu),
        ] {
            let report = run(&platform, &app, kind, 1)?;
            let stats = report.run_stats();
            let prefix = format!("stride_{factor}/{label}");
            m.push(format!("{prefix}/read_s"), report.mean_total_read_time());
            m.push(format!("{prefix}/hit_ratio"), stats.cache_hit_ratio);
            m.push(format!("{prefix}/bytes_from_disk"), stats.bytes_from_disk);
            m.push(format!("{prefix}/bytes_prefetched"), stats.bytes_prefetched);
        }
    }
    Ok(m)
}

/// Sequential → random → sequential mode switches on one 3 GB file with
/// readahead enabled: the window grows over the first GB, collapses for 16
/// random mid-file reads, and regrows over the final GB. Gated on both the
/// macroscopic model (no readahead notion, prefetched stays 0) and the
/// emulator.
fn prog_seq_random_switch() -> Result<Metrics, String> {
    let file_size = 3.0 * GB;
    let request = 64.0 * MB;
    let mut ops = strided_pass("data", 1.0 * GB, request, request);
    let mut rng = XorShift::new(0xA11CE5);
    let mut prev_end = 1.0 * GB;
    for _ in 0..16 {
        // Random requests in the middle GB, re-drawn if one would continue
        // the previous request (that would legitimately count as
        // sequential).
        let mut offset;
        loop {
            offset = 1.0 * GB + (rng.next_f64() * (1.0 * GB - request) / MB).floor() * MB;
            if (offset - prev_end).abs() > 1.0 {
                break;
            }
        }
        ops.push(Op::read_range("data", offset, request));
        ops.push(Op::ReleaseMemory(request));
        prev_end = offset + request;
    }
    let tail_start = 2.0 * GB;
    let mut offset = tail_start;
    while offset + request <= file_size {
        ops.push(Op::read_range("data", offset, request));
        ops.push(Op::ReleaseMemory(request));
        offset += request;
    }
    let app = ApplicationSpec::new("prog-seq-random-switch")
        .with_initial_file(FileSpec::new("data", file_size))
        .with_task(TaskSpec::program("mode switches", ops));
    let platform = scaled_platform(8.0 * GB).with_readahead(32.0 * MB, 256.0 * MB);
    let mut m = Metrics::new();
    for (label, kind) in [
        ("cache", SimulatorKind::PageCache),
        ("kernel_emu", SimulatorKind::KernelEmu),
    ] {
        let report = run(&platform, &app, kind, 1)?;
        let stats = report.run_stats();
        m.push(format!("{label}/read_s"), report.mean_total_read_time());
        m.push(format!("{label}/hit_ratio"), stats.cache_hit_ratio);
        m.push(format!("{label}/bytes_from_disk"), stats.bytes_from_disk);
        m.push(format!("{label}/bytes_prefetched"), stats.bytes_prefetched);
    }
    Ok(m)
}

/// Six 300 MB write bursts with think time on a 4 GB host (background
/// threshold 400 MB, dirty threshold 800 MB): every burst straddles the
/// throttle band. Gated on the macroscopic model, the unpaced emulator, and
/// the emulator with `balance_dirty_pages` pacing — the paced writer
/// reports stall time and a lower dirty peak.
fn prog_write_burst_throttle() -> Result<Metrics, String> {
    let burst = 300.0 * MB;
    // Appending bursts: dirty data accumulates across bursts (a rewrite of
    // the same record would re-dirty in place and never reach the band).
    let mut ops = Vec::new();
    for i in 0..6 {
        ops.push(Op::write_range("log", i as f64 * burst, burst));
        ops.push(Op::compute(1.0));
    }
    let app = ApplicationSpec::new("prog-write-burst").with_task(TaskSpec::program("bursts", ops));
    let platform = scaled_platform(4.0 * GB);
    let mut m = Metrics::new();
    for (label, kind, pacing) in [
        ("cache", SimulatorKind::PageCache, 0.0),
        ("kernel_emu_unpaced", SimulatorKind::KernelEmu, 0.0),
        ("kernel_emu_paced", SimulatorKind::KernelEmu, 1.0),
    ] {
        let mut platform = platform.clone().with_throttle_pacing(pacing);
        // Let the background threads run inside the think-time gaps.
        platform.flush_interval = 0.5;
        let report = run(&platform, &app, kind, 1)?;
        let stats = report.run_stats();
        m.push(format!("{label}/write_s"), report.mean_total_write_time());
        m.push(format!("{label}/throttle_stall_s"), stats.throttle_stall_s);
        m.push(format!("{label}/peak_dirty"), stats.peak_dirty);
        m.push(format!("{label}/bytes_to_disk"), stats.bytes_to_disk);
        let wb = report
            .writeback
            .ok_or_else(|| format!("{label} reported no writeback counters"))?;
        m.push(
            format!("{label}/synchronous_flushed"),
            wb.synchronous_flushed,
        );
        m.push(format!("{label}/background_flushed"), wb.background_flushed);
    }
    Ok(m)
}

/// A sequential 2 GB scan followed by a re-read of the first 512 MB on the
/// kernel emulator, across readahead window sizes (0 = disabled). The
/// prefetched volume grows with the window while the total disk traffic of
/// the scan stays constant — readahead never reads a byte twice.
fn sweep_readahead_window() -> Result<Metrics, String> {
    let file_size = 2.0 * GB;
    let request = 64.0 * MB;
    let hot = 512.0 * MB;
    let mut ops = strided_pass("data", file_size, request, request);
    ops.extend(strided_pass("data", hot, request, request));
    let app = ApplicationSpec::new("sweep-readahead")
        .with_initial_file(FileSpec::new("data", file_size))
        .with_task(TaskSpec::program("scan + hot re-read", ops));
    // Each window size is an independent simulation instance: sweep the
    // points on the sharded executor and merge the metrics in point order.
    let points = [0u32, 64, 256, 1024];
    let per_point = run_points(&points, |&max_mb| {
        let platform = if max_mb == 0 {
            scaled_platform(8.0 * GB)
        } else {
            scaled_platform(8.0 * GB).with_readahead(max_mb as f64 / 8.0 * MB, max_mb as f64 * MB)
        };
        let report = run(&platform, &app, SimulatorKind::KernelEmu, 1)?;
        let stats = report.run_stats();
        let prefix = format!("window_{max_mb:04}mb");
        Ok(vec![
            (format!("{prefix}/read_s"), report.mean_total_read_time()),
            (format!("{prefix}/bytes_prefetched"), stats.bytes_prefetched),
            (format!("{prefix}/bytes_from_disk"), stats.bytes_from_disk),
            (format!("{prefix}/hit_ratio"), stats.cache_hit_ratio),
        ])
    })?;
    let mut m = Metrics::new();
    for (name, value) in per_point.into_iter().flatten() {
        m.push(name, value);
    }
    Ok(m)
}

/// One sustained 1.5 GB write on a 4 GB host across pacing strengths: the
/// stall time grows with the pacing factor while the synchronously flushed
/// volume shrinks (stalled writers give the background threads time to
/// drain — the CAWL observation).
fn sweep_throttle_pacing() -> Result<Metrics, String> {
    let app = ApplicationSpec::new("sweep-pacing").with_task(TaskSpec::program(
        "sustained write",
        vec![Op::write_range("out", 0.0, 1536.0 * MB)],
    ));
    let points = [
        ("pacing_000", 0.0),
        ("pacing_050", 0.5),
        ("pacing_100", 1.0),
        ("pacing_200", 2.0),
    ];
    let per_point = run_points(&points, |&(label, pacing)| {
        let mut platform = scaled_platform(4.0 * GB).with_throttle_pacing(pacing);
        // A sub-second flusher wakeup, so the background threads actually
        // get to run inside the stalls the pacing creates (the paper-scale
        // 5 s interval would sleep through this whole workload).
        platform.flush_interval = 0.5;
        let report = run(&platform, &app, SimulatorKind::KernelEmu, 1)?;
        let stats = report.run_stats();
        let wb = report
            .writeback
            .ok_or_else(|| format!("{label} reported no writeback counters"))?;
        Ok(vec![
            (format!("{label}/write_s"), report.mean_total_write_time()),
            (format!("{label}/throttle_stall_s"), stats.throttle_stall_s),
            (format!("{label}/peak_dirty"), stats.peak_dirty),
            (
                format!("{label}/synchronous_flushed"),
                wb.synchronous_flushed,
            ),
            (format!("{label}/background_flushed"), wb.background_flushed),
        ])
    })?;
    let mut m = Metrics::new();
    for (name, value) in per_point.into_iter().flatten() {
        m.push(name, value);
    }
    Ok(m)
}

// ---------------------------------------------------------------------------
// Eviction-policy comparison sweeps
// ---------------------------------------------------------------------------

/// A hot 384 MB file re-read between scans of *fresh* 1.25 GB files (two
/// per round) on a 2 GB host — the classic scan-resistance workload. Each
/// round's eviction demand exceeds what the previous round left behind, so
/// a recency-only order reaches the hot file (touched once per round, older
/// than the in-flight scans) and flushes it every time. 2Q's ghost queue
/// recognises the re-insert and parks the hot file in the protected main
/// queue; the one-shot scans drain through A1in first — including the
/// current round's earlier scan file — so the hot set stays resident.
fn sweep_eviction_policy_reread() -> Result<Metrics, String> {
    let hot = 384.0 * MB;
    let scan = 1280.0 * MB;
    let request = 128.0 * MB;
    let rounds = 5usize;
    let mut ops = Vec::new();
    let mut app =
        ApplicationSpec::new("eviction-reread").with_initial_file(FileSpec::new("hot", hot));
    // Chunked requests with per-request releases, so the application
    // footprint never competes with the cache for residency.
    for i in 0..rounds {
        ops.extend(strided_pass("hot", hot, request, request));
        for half in ["a", "b"] {
            let scan_file = format!("scan_{i}{half}");
            ops.extend(strided_pass(&scan_file, scan, request, request));
            app = app.with_initial_file(FileSpec::new(scan_file, scan));
        }
    }
    app = app.with_task(TaskSpec::program("hot set between scans", ops));
    let mut m = Metrics::new();
    for policy in EvictionPolicy::ALL {
        let platform = scaled_platform(2.0 * GB).with_eviction_policy(policy);
        for (label, kind) in [
            ("cache", SimulatorKind::PageCache),
            ("kernel_emu", SimulatorKind::KernelEmu),
        ] {
            let report = run(&platform, &app, kind, 1)?;
            let stats = report.run_stats();
            let prefix = format!("{policy}/{label}");
            m.push(format!("{prefix}/hit_ratio"), stats.cache_hit_ratio);
            m.push(format!("{prefix}/read_s"), report.mean_total_read_time());
        }
    }
    Ok(m)
}

/// Two sequential 64 MB-request passes over a 2 GB file on a 1 GB host —
/// the sequential-flood pattern where a strict LRU order re-evicts every
/// block just before its re-read. How much of the second pass each policy
/// salvages (and at what disk traffic) is the gated spread.
fn sweep_eviction_policy_strided() -> Result<Metrics, String> {
    let file_size = 2.0 * GB;
    let request = 64.0 * MB;
    let mut ops = strided_pass("data", file_size, request, request);
    ops.extend(strided_pass("data", file_size, request, request));
    let app = ApplicationSpec::new("eviction-strided")
        .with_initial_file(FileSpec::new("data", file_size))
        .with_task(TaskSpec::program("two passes", ops));
    let mut m = Metrics::new();
    for policy in EvictionPolicy::ALL {
        let platform = scaled_platform(1.0 * GB).with_eviction_policy(policy);
        for (label, kind) in [
            ("cache", SimulatorKind::PageCache),
            ("kernel_emu", SimulatorKind::KernelEmu),
        ] {
            let report = run(&platform, &app, kind, 1)?;
            let stats = report.run_stats();
            let prefix = format!("{policy}/{label}");
            m.push(format!("{prefix}/hit_ratio"), stats.cache_hit_ratio);
            m.push(format!("{prefix}/read_s"), report.mean_total_read_time());
            m.push(format!("{prefix}/bytes_from_disk"), stats.bytes_from_disk);
        }
    }
    Ok(m)
}

/// The write-burst workload of `prog_write_burst_throttle` (six appending
/// 300 MB bursts straddling the dirty thresholds of a 4 GB host) across
/// replacement policies: write routing is a durability concern, so the
/// flushed volumes must stay (near) policy-independent while eviction of the
/// written-back pages differs.
fn sweep_eviction_policy_write_burst() -> Result<Metrics, String> {
    let burst = 300.0 * MB;
    let mut ops = Vec::new();
    for i in 0..6 {
        ops.push(Op::write_range("log", i as f64 * burst, burst));
        ops.push(Op::compute(1.0));
    }
    let app =
        ApplicationSpec::new("eviction-write-burst").with_task(TaskSpec::program("bursts", ops));
    let mut m = Metrics::new();
    for policy in EvictionPolicy::ALL {
        let mut platform = scaled_platform(4.0 * GB).with_eviction_policy(policy);
        // Let the background threads run inside the think-time gaps.
        platform.flush_interval = 0.5;
        for (label, kind) in [
            ("cache", SimulatorKind::PageCache),
            ("kernel_emu", SimulatorKind::KernelEmu),
        ] {
            let report = run(&platform, &app, kind, 1)?;
            let stats = report.run_stats();
            let prefix = format!("{policy}/{label}");
            m.push(format!("{prefix}/write_s"), report.mean_total_write_time());
            m.push(format!("{prefix}/peak_dirty"), stats.peak_dirty);
            m.push(format!("{prefix}/bytes_to_disk"), stats.bytes_to_disk);
        }
    }
    Ok(m)
}

/// The `examples/database_workload.rs` workload at harness scale.
fn example_database_workload() -> Result<Metrics, String> {
    let platform = uniform_platform(8.0 * GB);
    let app = ApplicationSpec::new("database").with_task(TaskSpec::program(
        "commit loop + checkpoint",
        vec![
            Op::repeat(
                32,
                vec![
                    Op::write_range("wal", 0.0, 16.0 * MB),
                    Op::fsync("wal"),
                    Op::compute(0.05),
                ],
            ),
            Op::write_range("table", 0.0, 512.0 * MB),
            Op::Sync,
        ],
    ));
    let mut m = Metrics::new();
    for (label, kind) in [
        ("cacheless", SimulatorKind::Cacheless),
        ("cache", SimulatorKind::PageCache),
        ("kernel_emu", SimulatorKind::KernelEmu),
    ] {
        let report = run(&platform, &app, kind, 1)?;
        let task = &report.instance_reports[0].tasks[0];
        m.push(format!("{label}/write_s"), task.write_time);
        m.push(format!("{label}/makespan_s"), report.mean_makespan());
        m.push(
            format!("{label}/bytes_to_disk"),
            task.write_stats.bytes_to_disk,
        );
    }
    Ok(m)
}

// ---------------------------------------------------------------------------
// Synthetic parameter sweeps
// ---------------------------------------------------------------------------

/// Write behaviour across dirty thresholds. The page-cache model reacts to
/// `dirty_ratio` (throttling), the kernel emulator additionally to
/// `dirty_background_ratio` (early background flushing) — both are gated.
fn sweep_dirty_ratio() -> Result<Metrics, String> {
    let app = ApplicationSpec::synthetic_pipeline(2.0 * GB);
    let mut m = Metrics::new();
    for ratio in [0.05, 0.1, 0.2, 0.4] {
        let platform = scaled_platform(8.0 * GB)
            .with_dirty_ratio(ratio)
            .with_dirty_background_ratio(ratio / 2.0);
        for (label, kind) in [
            ("cache", SimulatorKind::PageCache),
            ("kernel_emu", SimulatorKind::KernelEmu),
        ] {
            let report = run(&platform, &app, kind, 1)?;
            let stats = report.run_stats();
            let prefix = format!("ratio_{:02}/{label}", (ratio * 100.0) as u32);
            m.push(format!("{prefix}/write_s"), report.mean_total_write_time());
            m.push(format!("{prefix}/peak_dirty"), stats.peak_dirty);
            let wb = report
                .writeback
                .ok_or_else(|| format!("{label} reported no writeback counters"))?;
            m.push(
                format!("{prefix}/background_flushed"),
                wb.background_flushed,
            );
            m.push(
                format!("{prefix}/synchronous_flushed"),
                wb.synchronous_flushed,
            );
        }
    }
    Ok(m)
}

/// Cache effectiveness across host-memory sizes: as RAM shrinks below the
/// working set, the hit ratio and the makespan of the re-read pipeline
/// degrade towards the cacheless behaviour.
fn sweep_cache_size() -> Result<Metrics, String> {
    let app = ApplicationSpec::synthetic_pipeline(3.0 * GB);
    let points = [4.0, 8.0, 16.0, 32.0];
    let per_point = run_points(&points, |&memory_gb| {
        let platform = scaled_platform(memory_gb * GB);
        let report = run(&platform, &app, SimulatorKind::PageCache, 1)?;
        let prefix = format!("mem_{memory_gb:02.0}gb");
        let mut pm = Metrics::new();
        pm.push(format!("{prefix}/makespan_s"), report.mean_makespan());
        push_run_stats(&mut pm, &prefix, &report.run_stats());
        Ok(pm)
    })?;
    let mut m = Metrics::new();
    for pm in per_point {
        for (name, value) in pm.entries() {
            m.push(name.clone(), *value);
        }
    }
    Ok(m)
}

/// Read/write mix: a two-task chain whose output volume is `mix` times its
/// input volume, from read-heavy (0.25) to write-heavy (4.0).
fn sweep_rw_mix() -> Result<Metrics, String> {
    let input_size = 2.0 * GB;
    let mut m = Metrics::new();
    for (label, mix) in [
        ("read_heavy", 0.25),
        ("balanced", 1.0),
        ("write_heavy", 4.0),
    ] {
        let input = FileSpec::new("input.dat", input_size);
        let mid = FileSpec::new("mid.dat", input_size * mix);
        let out = FileSpec::new("out.dat", input_size * mix);
        let app = ApplicationSpec::new("rw-mix")
            .with_initial_file(input.clone())
            .with_task(
                TaskSpec::new("stage 1", 1.0)
                    .reads(input)
                    .writes(mid.clone()),
            )
            .with_task(TaskSpec::new("stage 2", 1.0).reads(mid).writes(out));
        let report = run(
            &scaled_platform(8.0 * GB),
            &app,
            SimulatorKind::PageCache,
            1,
        )?;
        let stats = report.run_stats();
        m.push(format!("{label}/makespan_s"), report.mean_makespan());
        m.push(format!("{label}/read_s"), report.mean_total_read_time());
        m.push(format!("{label}/write_s"), report.mean_total_write_time());
        m.push(format!("{label}/bytes_to_cache"), stats.bytes_to_cache);
        m.push(format!("{label}/bytes_to_disk"), stats.bytes_to_disk);
    }
    Ok(m)
}

/// Contention across concurrent-instance counts, cacheless vs cached.
fn sweep_concurrency() -> Result<Metrics, String> {
    let platform = scaled_platform(16.0 * GB);
    let app = ApplicationSpec::synthetic_pipeline(1.0 * GB);
    let mut m = Metrics::new();
    for instances in [1usize, 2, 4, 8] {
        for (label, kind) in [
            ("cacheless", SimulatorKind::Cacheless),
            ("cache", SimulatorKind::PageCache),
        ] {
            let report = run(&platform, &app, kind, instances)?;
            m.push(
                format!("n{instances:02}/{label}/read_s"),
                report.mean_total_read_time(),
            );
            m.push(
                format!("n{instances:02}/{label}/write_s"),
                report.mean_total_write_time(),
            );
            m.push(
                format!("n{instances:02}/{label}/makespan_s"),
                report.mean_makespan(),
            );
        }
    }
    Ok(m)
}

// ---------------------------------------------------------------------------
// Fault-injection scenarios (crash durability, injected errors, retries)
// ---------------------------------------------------------------------------

/// Like [`run`], but with a fault plan attached (and optionally a restart
/// pass after the planned crash). Single instance, no memory sampling.
fn run_faulted(
    platform: &PlatformSpec,
    app: &ApplicationSpec,
    kind: SimulatorKind,
    plan: &FaultPlan,
    restart: bool,
) -> Result<ScenarioReport, String> {
    let mut scenario = WorkflowScenario::new(platform.clone(), app.clone(), kind)
        .with_faults(plan.clone())
        .with_sample_interval(None);
    if restart {
        scenario = scenario.with_restart_after_crash();
    }
    run_scenario(&scenario).map_err(err)
}

/// The database commit that never committed: a 200 MB WAL record is written
/// but power is lost before any fsync. The write-back caches lose the whole
/// record; the cacheless (synchronous) baseline keeps it.
fn fault_crash_before_fsync_database() -> Result<Metrics, String> {
    let app = ApplicationSpec::new("fault-before-fsync").with_task(TaskSpec::program(
        "commit",
        vec![Op::write_range("wal", 0.0, 200.0 * MB), Op::compute(100.0)],
    ));
    // The write completes well under a second; 2 s is long before both the
    // 30 s dirty-expiry flush and the background threshold (200 MB dirty on
    // an 8 GB host stays below dirty_background_ratio).
    let plan = FaultPlan::crash_at(2.0);
    let mut m = Metrics::new();
    for (label, kind) in [
        ("cacheless", SimulatorKind::Cacheless),
        ("cache", SimulatorKind::PageCache),
        ("kernel_emu", SimulatorKind::KernelEmu),
    ] {
        let report = run_faulted(&scaled_platform(8.0 * GB), &app, kind, &plan, false)?;
        let stats = report.run_stats();
        m.push(format!("{label}/durable_bytes"), stats.durable_bytes);
        m.push(format!("{label}/lost_bytes"), stats.lost_bytes);
        m.push(format!("{label}/lost_files"), stats.lost_files);
    }
    Ok(m)
}

/// The committed counterpart: the same 200 MB WAL record, but fsync'd before
/// the same power loss. Every back-end reports the record durable.
fn fault_crash_after_fsync_database() -> Result<Metrics, String> {
    let app = ApplicationSpec::new("fault-after-fsync").with_task(TaskSpec::program(
        "commit",
        vec![
            Op::write_range("wal", 0.0, 200.0 * MB),
            Op::fsync("wal"),
            Op::compute(100.0),
        ],
    ));
    let plan = FaultPlan::crash_at(2.0);
    let mut m = Metrics::new();
    for (label, kind) in [
        ("cacheless", SimulatorKind::Cacheless),
        ("cache", SimulatorKind::PageCache),
        ("kernel_emu", SimulatorKind::KernelEmu),
    ] {
        let report = run_faulted(&scaled_platform(8.0 * GB), &app, kind, &plan, false)?;
        let stats = report.run_stats();
        m.push(format!("{label}/durable_bytes"), stats.durable_bytes);
        m.push(format!("{label}/lost_bytes"), stats.lost_bytes);
        m.push(format!("{label}/lost_files"), stats.lost_files);
    }
    Ok(m)
}

/// A 1.2 GB write pushes past the background-writeback threshold, and the
/// crash lands while the flusher threads are mid-drain. The kernel emulator
/// keeps a durable prefix (its background threads flush over-threshold
/// dirty data early); the macroscopic model has no early background
/// flushing, so it legitimately loses the whole file — both are gated. The
/// scenario then restarts the application against the post-crash state and
/// gates that the restart pass completes.
fn fault_writeback_storm_crash() -> Result<Metrics, String> {
    let app = ApplicationSpec::new("fault-writeback-storm").with_task(TaskSpec::program(
        "burst",
        vec![Op::write_range("out", 0.0, 1200.0 * MB), Op::compute(200.0)],
    ));
    let plan = FaultPlan::crash_at(12.0);
    let mut m = Metrics::new();
    for (label, kind) in [
        ("cache", SimulatorKind::PageCache),
        ("kernel_emu", SimulatorKind::KernelEmu),
    ] {
        let report = run_faulted(&scaled_platform(8.0 * GB), &app, kind, &plan, true)?;
        let stats = report.run_stats();
        m.push(format!("{label}/durable_bytes"), stats.durable_bytes);
        m.push(format!("{label}/lost_bytes"), stats.lost_bytes);
        m.push(format!("{label}/lost_files"), stats.lost_files);
        let restart_completed = report
            .restart_reports
            .iter()
            .flat_map(|i| i.tasks.iter())
            .filter(|t| t.status.is_completed())
            .count() as f64;
        m.push(
            format!("{label}/restart_completed_tasks"),
            restart_completed,
        );
    }
    Ok(m)
}

/// A two-second NFS outage in the middle of a chunked transfer, ridden out
/// by a retrying task: every chunk that lands in the window backs off
/// exponentially until the server is reachable again.
fn fault_nfs_outage_retry_storm() -> Result<Metrics, String> {
    let chunk = 32.0 * MB;
    let mut ops = vec![Op::read("in")];
    for i in 0..16 {
        ops.push(Op::write_range("out", i as f64 * chunk, chunk));
    }
    ops.push(Op::fsync("out"));
    let app = ApplicationSpec::new("fault-nfs-outage")
        .with_initial_file(FileSpec::new("in", 256.0 * MB))
        .with_task(TaskSpec::program("chunked transfer", ops).with_retry(RetryPolicy::new(6, 0.5)));
    let plan = FaultPlan::none().with_event(FaultEvent::NfsOutage {
        at: 0.5,
        duration: 2.0,
    });
    let platform = scaled_platform(8.0 * GB).with_nfs();
    let mut m = Metrics::new();
    for (label, kind) in [
        ("cacheless", SimulatorKind::Cacheless),
        ("cache", SimulatorKind::PageCache),
    ] {
        let report = run_faulted(&platform, &app, kind, &plan, false)?;
        m.push(format!("{label}/retries"), report.total_retries() as f64);
        m.push(format!("{label}/write_s"), report.mean_total_write_time());
        m.push(format!("{label}/makespan_s"), report.mean_makespan());
    }
    Ok(m)
}

/// A persistent EIO pinned to one output file: its task fails, the two
/// independent siblings still complete, and the run finishes degraded
/// instead of aborting.
fn fault_eio_degraded() -> Result<Metrics, String> {
    let mut app =
        ApplicationSpec::new("fault-eio").with_initial_file(FileSpec::new("in", 256.0 * MB));
    for i in 1..=3 {
        app = app.with_task(TaskSpec::program(
            format!("t{i}"),
            vec![Op::read("in"), Op::write(format!("out{i}"), 128.0 * MB)],
        ));
    }
    let plan = FaultPlan::none().with_event(FaultEvent::IoError(
        IoErrorSpec::at(OpClass::Write, 0.0, ErrorMode::Persistent).on_file("out2"),
    ));
    let mut m = Metrics::new();
    for (label, kind) in [
        ("cache", SimulatorKind::PageCache),
        ("kernel_emu", SimulatorKind::KernelEmu),
    ] {
        let report = run_faulted(&scaled_platform(8.0 * GB), &app, kind, &plan, false)?;
        let stats = report.run_stats();
        m.push(
            format!("{label}/failed_tasks"),
            report.failed_tasks().len() as f64,
        );
        m.push(format!("{label}/bytes_to_cache"), stats.bytes_to_cache);
        m.push(format!("{label}/makespan_s"), report.mean_makespan());
    }
    Ok(m)
}

/// One transient error on the first WAL write, swept across backoff
/// strengths: the retry count stays at one while the recovery delay — and
/// with it the write time — grows with the backoff.
fn fault_retry_backoff_sweep() -> Result<Metrics, String> {
    let plan = FaultPlan::none().with_event(FaultEvent::IoError(IoErrorSpec::nth(
        OpClass::Write,
        1,
        ErrorMode::Transient,
    )));
    let mut m = Metrics::new();
    for (label, backoff) in [
        ("backoff_025", 0.25),
        ("backoff_100", 1.0),
        ("backoff_400", 4.0),
    ] {
        let app = ApplicationSpec::new("fault-backoff").with_task(
            TaskSpec::program(
                "commit",
                vec![Op::write_range("wal", 0.0, 64.0 * MB), Op::fsync("wal")],
            )
            .with_retry(RetryPolicy::new(4, backoff)),
        );
        let report = run_faulted(
            &scaled_platform(8.0 * GB),
            &app,
            SimulatorKind::PageCache,
            &plan,
            false,
        )?;
        m.push(format!("{label}/retries"), report.total_retries() as f64);
        m.push(format!("{label}/write_s"), report.mean_total_write_time());
        m.push(format!("{label}/makespan_s"), report.mean_makespan());
    }
    Ok(m)
}

// ---------------------------------------------------------------------------
// Network-tier fault scenarios (replicated storage fleet)
// ---------------------------------------------------------------------------

/// Runs an application against the replicated storage fleet under a fault
/// plan, with one application instance per fleet client.
fn run_fleet(
    platform: &PlatformSpec,
    app: &ApplicationSpec,
    plan: &FaultPlan,
    instances: usize,
) -> Result<ScenarioReport, String> {
    let mut scenario =
        WorkflowScenario::new(platform.clone(), app.clone(), SimulatorKind::PageCache)
            .with_faults(plan.clone())
            .with_sample_interval(None);
    if instances > 1 {
        scenario = scenario.with_instances(instances).map_err(err)?;
    }
    run_scenario(&scenario).map_err(err)
}

/// Records the network-tier counters of a fleet report under a prefix.
fn push_net_stats(m: &mut Metrics, prefix: &str, report: &ScenarioReport) {
    let net = report.net.clone().unwrap_or_default();
    m.push(format!("{prefix}/stale_reads"), net.stale_reads);
    m.push(format!("{prefix}/hedged_reads"), net.hedged_reads);
    m.push(format!("{prefix}/failed_reads"), net.failed_reads);
    m.push(format!("{prefix}/failed_writes"), net.failed_writes);
    m.push(format!("{prefix}/net_retries"), net.net_retries);
    m.push(format!("{prefix}/failovers"), net.failovers);
}

/// Six clients stampede on one hot shared file while a partition cuts three
/// of them off from every server for a finite window. The cut clients ride
/// the window out with timeout + backoff, then stampede the primary when it
/// heals; nobody fails.
fn netf_partition_stampede() -> Result<Metrics, String> {
    let policy = ClientPolicy::default()
        .with_timeout(4.0)
        .with_retry(RetryPolicy::new(8, 0.5));
    let platform = scaled_platform(8.0 * GB)
        .with_chunk_size(32.0 * MB)
        .with_fleet(FleetSpec::new(6, 3, 2).with_policy(policy));
    let app = ApplicationSpec::new("netf-stampede")
        .with_initial_file(FileSpec::new("shared/hot", 512.0 * MB))
        .with_task(TaskSpec::program(
            "stampede",
            vec![Op::read("shared/hot"), Op::read("shared/hot")],
        ));
    let plan = FaultPlan::none().with_event(FaultEvent::Partition {
        groups: vec![
            (0..3).map(|i| format!("client{i:02}")).collect(),
            (0..3).map(server_host).collect(),
        ],
        at: 0.5,
        duration: 6.0,
    });
    let report = run_fleet(&platform, &app, &plan, 6)?;
    let mut m = Metrics::new();
    push_run_stats(&mut m, "fleet", &report.run_stats());
    push_net_stats(&mut m, "fleet", &report);
    m.push("fleet/failed_tasks", report.failed_tasks().len() as f64);
    m.push("fleet/makespan_s", report.mean_makespan());
    Ok(m)
}

/// Four clients each push a 256 MB file (write-back: the servers buffer it
/// dirty) and read it back; the primary of the first client's file crashes
/// mid-storm. Writes to the dead replica surface in the net report, reads
/// fail over to the surviving replica, and the durability oracle records
/// what the dead server's disk retained.
fn netf_server_crash_failover() -> Result<Metrics, String> {
    let platform = scaled_platform(8.0 * GB)
        .with_chunk_size(32.0 * MB)
        .with_fleet(FleetSpec::new(4, 3, 2));
    let app = ApplicationSpec::new("netf-crash").with_task(TaskSpec::program(
        "store-and-check",
        vec![Op::write("out", 256.0 * MB), Op::read("out")],
    ));
    let victim = server_host(primary_server(3, "i00_out"));
    let plan = FaultPlan::none().with_event(FaultEvent::ServerCrash {
        host: victim,
        at: 0.2,
    });
    let report = run_fleet(&platform, &app, &plan, 4)?;
    let net = report.net.clone().unwrap_or_default();
    let mut m = Metrics::new();
    push_run_stats(&mut m, "fleet", &report.run_stats());
    push_net_stats(&mut m, "fleet", &report);
    m.push("fleet/server_crashes", net.server_crashes.len() as f64);
    m.push(
        "fleet/crashed_durable_bytes",
        net.server_crashes
            .iter()
            .map(|(_, r)| r.durable_bytes())
            .sum(),
    );
    m.push(
        "fleet/crashed_lost_bytes",
        net.server_crashes.iter().map(|(_, r)| r.lost_bytes()).sum(),
    );
    m.push("fleet/failed_tasks", report.failed_tasks().len() as f64);
    m.push("fleet/makespan_s", report.mean_makespan());
    Ok(m)
}

/// Replication 1 (no failover possible): the only path to each file flaps
/// down and up three times. Timeout + exponential backoff absorb every
/// outage window — a retry storm, but zero failures.
fn netf_flapping_link_retry_storm() -> Result<Metrics, String> {
    let policy = ClientPolicy::default()
        .with_timeout(3.0)
        .with_retry(RetryPolicy::new(8, 0.5));
    let platform = scaled_platform(8.0 * GB)
        .with_chunk_size(32.0 * MB)
        .with_fleet(FleetSpec::new(4, 2, 1).with_policy(policy));
    let app = ApplicationSpec::new("netf-flapping")
        .with_initial_file(FileSpec::new("in", 256.0 * MB))
        .with_task(TaskSpec::program(
            "pass",
            vec![Op::read("in"), Op::write("out", 128.0 * MB)],
        ));
    let mut plan = FaultPlan::none();
    for server in 0..2 {
        for flap in 0..3 {
            plan = plan.with_event(FaultEvent::LinkDown {
                link: server_link(server),
                at: 0.3 + 2.5 * f64::from(flap),
                duration: 0.8,
            });
        }
    }
    let report = run_fleet(&platform, &app, &plan, 4)?;
    let mut m = Metrics::new();
    push_run_stats(&mut m, "fleet", &report.run_stats());
    push_net_stats(&mut m, "fleet", &report);
    m.push("fleet/failed_tasks", report.failed_tasks().len() as f64);
    m.push("fleet/makespan_s", report.mean_makespan());
    Ok(m)
}

// ---------------------------------------------------------------------------
// Traffic tier: load generation, latency percentiles, tenancy
// ---------------------------------------------------------------------------

/// Records one traffic generator's report under a prefix.
fn push_traffic_stats(m: &mut Metrics, prefix: &str, gen: &TrafficGenReport) {
    m.push(format!("{prefix}/completed"), gen.completed as f64);
    m.push(format!("{prefix}/failed"), gen.failed as f64);
    m.push(format!("{prefix}/throughput_rps"), gen.throughput_rps);
    m.push(format!("{prefix}/read_p50_s"), gen.read_latency.p50);
    m.push(format!("{prefix}/read_p99_s"), gen.read_latency.p99);
    m.push(format!("{prefix}/read_p999_s"), gen.read_latency.p999);
    m.push(format!("{prefix}/write_p99_s"), gen.write_latency.p99);
    m.push(format!("{prefix}/mean_in_flight"), gen.mean_in_flight);
    m.push(
        format!("{prefix}/peak_in_flight"),
        gen.peak_in_flight as f64,
    );
    m.push(format!("{prefix}/cache_hit_ratio"), gen.cache_hit_ratio);
    m.push(format!("{prefix}/limit_evicted"), gen.limit_evicted);
    m.push(format!("{prefix}/limit_flushed"), gen.limit_flushed);
}

/// Runs a traffic-only scenario (no application tasks) and returns its
/// traffic report.
fn run_traffic(
    platform: &PlatformSpec,
    kind: SimulatorKind,
    specs: Vec<TrafficSpec>,
) -> Result<workflow::TrafficReport, String> {
    let scenario = WorkflowScenario::new(platform.clone(), ApplicationSpec::new("traffic"), kind)
        .with_sample_interval(None)
        .with_traffic(specs);
    let report = run_scenario(&scenario).map_err(err)?;
    report
        .traffic
        .ok_or_else(|| "no traffic report".to_string())
}

fn traffic_gen<'a>(
    report: &'a workflow::TrafficReport,
    name: &str,
) -> Result<&'a TrafficGenReport, String> {
    report
        .generator(name)
        .ok_or_else(|| format!("generator {name} missing"))
}

/// A steady-state Zipf(1) content server: open-loop Poisson arrivals over a
/// small hot catalog, on both cached back-ends. The hot set fits in memory,
/// so most reads are cache hits and the p50/p99 split shows the
/// hit-vs-miss bimodality.
fn traffic_zipf_steady_state() -> Result<Metrics, String> {
    let platform = scaled_platform(8.0 * GB);
    let mut m = Metrics::new();
    for (label, kind) in [
        ("cache", SimulatorKind::PageCache),
        ("kernel_emu", SimulatorKind::KernelEmu),
    ] {
        let spec = TrafficSpec::open("steady", 400.0, 600)
            .with_catalog(32, 8.0 * MB)
            .with_request_bytes(1.0 * MB)
            .with_zipf(1.0)
            .with_read_fraction(0.9)
            .with_seed(42);
        let report = run_traffic(&platform, kind, vec![spec])?;
        push_traffic_stats(&mut m, label, traffic_gen(&report, "steady")?);
    }
    Ok(m)
}

/// The same request stream issued open- vs closed-loop against a device that
/// cannot keep up. The open loop keeps arriving at its target rate, so
/// queueing delay compounds into the tail percentiles and in-flight
/// concurrency climbs; the closed loop's eight clients self-throttle.
fn traffic_open_vs_closed_saturation() -> Result<Metrics, String> {
    let platform = scaled_platform(8.0 * GB);
    let mut m = Metrics::new();
    let open = TrafficSpec::open("open", 1200.0, 500)
        .with_catalog(128, 32.0 * MB)
        .with_request_bytes(4.0 * MB)
        .with_zipf(0.6)
        .with_read_fraction(0.8)
        .with_seed(17);
    let closed = TrafficSpec::closed("closed", 8, 0.0, 500)
        .with_catalog(128, 32.0 * MB)
        .with_request_bytes(4.0 * MB)
        .with_zipf(0.6)
        .with_read_fraction(0.8)
        .with_seed(17);
    let report = run_traffic(&platform, SimulatorKind::PageCache, vec![open])?;
    push_traffic_stats(&mut m, "open", traffic_gen(&report, "open")?);
    let report = run_traffic(&platform, SimulatorKind::PageCache, vec![closed])?;
    push_traffic_stats(&mut m, "closed", traffic_gen(&report, "closed")?);
    Ok(m)
}

/// One tenant, two cache limits. With a limit comfortably above the Zipf
/// hot set the server runs from memory; shrinking the limit below the hot
/// set forces continuous eviction and every displaced hit back to disk —
/// read p99 strictly degrades (the acceptance criterion of the traffic
/// tier).
fn traffic_cache_pressure_tail_latency() -> Result<Metrics, String> {
    let platform = scaled_platform(8.0 * GB);
    let mut m = Metrics::new();
    for (label, cap) in [("fits", 1.0 * GB), ("exceeds", 24.0 * MB)] {
        let spec = TrafficSpec::open("pressured", 300.0, 1200)
            .with_catalog(8, 8.0 * MB)
            .with_request_bytes(1.0 * MB)
            .with_zipf(1.1)
            .with_read_fraction(0.95)
            .with_seed(23)
            .with_warmup(300)
            .with_tenant(TenantSpec::capped(cap));
        let report = run_traffic(&platform, SimulatorKind::PageCache, vec![spec])?;
        push_traffic_stats(&mut m, label, traffic_gen(&report, "pressured")?);
    }
    Ok(m)
}

/// A latency-sensitive logger ("victim") sharing a 512 MB host with a bulk
/// ingest stream ("hog"). Unlimited, the hog's dirty pages climb to the
/// host's `dirty_ratio` threshold and *every* writer — the victim included —
/// stalls in synchronous writeback. Capping the hog's cache group
/// (memcg-style `max_dirty_bytes`) keeps global dirty below the threshold,
/// and the victim's write p99 recovers to cache speed.
fn traffic_noisy_neighbor_isolation() -> Result<Metrics, String> {
    let platform = scaled_platform(0.5 * GB);
    let mut m = Metrics::new();
    for (label, isolated) in [("shared", false), ("isolated", true)] {
        let victim = TrafficSpec::closed("victim", 4, 0.005, 1500)
            .with_catalog(8, 4.0 * MB)
            .with_request_bytes(1.0 * MB)
            .with_zipf(1.0)
            .with_read_fraction(0.0)
            .with_seed(31)
            .with_warmup(200);
        // The hog is a bounded closed loop: its in-flight footprint (8 × 8
        // MB) stays within the cap's headroom, so the isolated leg's limit
        // can actually contain it.
        let mut hog = TrafficSpec::closed("hog", 8, 0.0, 600)
            .with_catalog(48, 64.0 * MB)
            .with_request_bytes(8.0 * MB)
            .with_zipf(0.0)
            .with_read_fraction(0.0)
            .with_seed(32);
        if isolated {
            hog = hog.with_tenant(TenantSpec {
                max_cache_bytes: 192.0 * MB,
                max_dirty_bytes: 48.0 * MB,
            });
        }
        let report = run_traffic(&platform, SimulatorKind::PageCache, vec![victim, hog])?;
        push_traffic_stats(
            &mut m,
            &format!("{label}/victim"),
            traffic_gen(&report, "victim")?,
        );
        push_traffic_stats(
            &mut m,
            &format!("{label}/hog"),
            traffic_gen(&report, "hog")?,
        );
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_unique_names_and_covers_all_groups() {
        let scenarios = registry();
        assert!(
            scenarios.len() >= 13,
            "need >= 13 scenarios, have {}",
            scenarios.len()
        );
        let names: Vec<&str> = scenarios.iter().map(|s| s.name()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len(), "duplicate scenario names");
        for group in [
            "paper",
            "examples",
            "sweep",
            "programs",
            "eviction",
            "faults",
            "net_faults",
            "traffic",
        ] {
            assert!(
                scenarios.iter().any(|s| s.group() == group),
                "no scenario in group {group}"
            );
        }
        // Ten paper artefacts, at least three synthetic sweeps, at least
        // four workload-program scenarios, and at least five fault-injection
        // scenarios, per the acceptance criteria.
        assert_eq!(
            scenarios.iter().filter(|s| s.group() == "paper").count(),
            10
        );
        assert!(scenarios.iter().filter(|s| s.group() == "sweep").count() >= 3);
        assert!(scenarios.iter().filter(|s| s.group() == "programs").count() >= 4);
        assert!(scenarios.iter().filter(|s| s.group() == "faults").count() >= 5);
        assert!(scenarios.iter().filter(|s| s.group() == "eviction").count() >= 3);
        assert!(
            scenarios
                .iter()
                .filter(|s| s.group() == "net_faults")
                .count()
                >= 3
        );
        assert!(scenarios.iter().filter(|s| s.group() == "traffic").count() >= 3);
        assert!(scenarios.iter().all(|s| !s.description().is_empty()));
    }

    #[test]
    fn cache_pressure_strictly_degrades_read_tail_latency() {
        let m = traffic_cache_pressure_tail_latency().unwrap();
        // The acceptance criterion of the traffic tier: when the Zipf hot
        // set exceeds the tenant's cache limit, read p99 strictly degrades.
        let fits = metric(&m, "fits/read_p99_s");
        let exceeds = metric(&m, "exceeds/read_p99_s");
        assert!(
            exceeds > fits,
            "p99 under pressure ({exceeds}) must exceed the fitting leg ({fits})"
        );
        assert!(metric(&m, "exceeds/limit_evicted") > 0.0);
        assert!(metric(&m, "exceeds/cache_hit_ratio") < metric(&m, "fits/cache_hit_ratio"));
        assert_eq!(metric(&m, "fits/failed"), 0.0);
        assert_eq!(metric(&m, "exceeds/failed"), 0.0);
    }

    #[test]
    fn isolation_improves_the_victims_tail_latency() {
        let m = traffic_noisy_neighbor_isolation().unwrap();
        // The noisy-neighbor criterion: capping the hog's cache group must
        // strictly improve the isolated victim's write p99 (the uncapped
        // hog drives global dirty to the throttle threshold and stalls it).
        let shared = metric(&m, "shared/victim/write_p99_s");
        let isolated = metric(&m, "isolated/victim/write_p99_s");
        assert!(
            isolated < shared,
            "victim p99 with isolation ({isolated}) must beat without ({shared})"
        );
        assert!(
            metric(&m, "isolated/victim/throughput_rps")
                > metric(&m, "shared/victim/throughput_rps")
        );
        // The cap actually bit: the hog's dirty pages were flushed by limit
        // enforcement, and only in the isolated leg.
        assert!(metric(&m, "isolated/hog/limit_flushed") > 0.0);
        assert_eq!(metric(&m, "shared/hog/limit_flushed"), 0.0);
        assert_eq!(metric(&m, "shared/hog/limit_evicted"), 0.0);
    }

    #[test]
    fn open_loop_piles_queueing_into_the_tail_closed_loop_self_throttles() {
        let m = traffic_open_vs_closed_saturation().unwrap();
        // Past saturation the open loop's in-flight count climbs far beyond
        // the closed loop's 8 clients, and queueing delay shows up in its
        // tail.
        assert!(metric(&m, "open/peak_in_flight") > 8.0);
        assert!(metric(&m, "closed/peak_in_flight") <= 8.0);
        assert!(metric(&m, "open/read_p99_s") > metric(&m, "closed/read_p99_s"));
        assert_eq!(metric(&m, "open/completed"), 500.0);
        assert_eq!(metric(&m, "closed/completed"), 500.0);
    }

    #[test]
    fn steady_state_zipf_serving_mostly_hits_on_both_backends() {
        let m = traffic_zipf_steady_state().unwrap();
        for backend in ["cache", "kernel_emu"] {
            assert_eq!(metric(&m, &format!("{backend}/completed")), 600.0);
            assert!(
                metric(&m, &format!("{backend}/cache_hit_ratio")) > 0.5,
                "{backend}: the in-memory hot set should serve most reads"
            );
            assert!(
                metric(&m, &format!("{backend}/read_p99_s"))
                    >= metric(&m, &format!("{backend}/read_p50_s"))
            );
        }
    }

    #[test]
    fn never_healing_partition_completes_degraded() {
        // The acceptance criterion of the network tier: cut the clients off
        // from every server forever and the run must still terminate — no
        // hang, no panic — with the affected tasks failed degraded.
        let platform = scaled_platform(8.0 * GB).with_fleet(FleetSpec::new(2, 2, 1));
        let app = ApplicationSpec::new("netf-forever")
            .with_initial_file(FileSpec::new("shared/hot", 128.0 * MB))
            .with_task(TaskSpec::program("reader", vec![Op::read("shared/hot")]));
        let plan = FaultPlan::none().with_event(FaultEvent::Partition {
            groups: vec![
                vec!["client00".into(), "client01".into()],
                vec![server_host(0), server_host(1)],
            ],
            at: 0.0,
            duration: f64::INFINITY,
        });
        let report = run_fleet(&platform, &app, &plan, 2).unwrap();
        assert!(report.simulated_duration.is_finite());
        assert_eq!(report.failed_tasks().len(), 2);
        assert!(report.net.as_ref().unwrap().failed_reads >= 2.0);
    }

    #[test]
    fn stampede_retries_through_the_partition_window() {
        let m = netf_partition_stampede().unwrap();
        // The cut clients must have retried (the window forces backoff) and
        // nobody may fail: the finite partition heals before the retry
        // budget runs out.
        assert!(metric(&m, "fleet/net_retries") > 0.0);
        assert_eq!(metric(&m, "fleet/failed_tasks"), 0.0);
    }

    #[test]
    fn crashed_primary_surfaces_failed_writes_and_failovers() {
        let m = netf_server_crash_failover().unwrap();
        assert_eq!(metric(&m, "fleet/server_crashes"), 1.0);
        // The crash happens mid-storm: later writes to the dead replica are
        // surfaced, and at least one read fails over to a survivor.
        assert!(metric(&m, "fleet/failed_writes") > 0.0);
        assert!(metric(&m, "fleet/failovers") > 0.0);
        assert_eq!(metric(&m, "fleet/failed_tasks"), 0.0);
    }

    #[test]
    fn flapping_links_cause_retries_but_no_failures() {
        let m = netf_flapping_link_retry_storm().unwrap();
        assert!(metric(&m, "fleet/net_retries") > 0.0);
        assert_eq!(metric(&m, "fleet/failed_tasks"), 0.0);
        assert_eq!(metric(&m, "fleet/failed_reads"), 0.0);
    }

    #[test]
    fn two_q_beats_two_list_on_the_scan_resistance_workload() {
        let m = sweep_eviction_policy_reread().unwrap();
        // The hot set survives the one-shot scans only under 2Q's ghost
        // queue: its hit ratio must be strictly higher than the 2-list
        // baseline on both the macroscopic model and the kernel emulator
        // (the policy-dependent ordering of the acceptance criteria).
        for backend in ["cache", "kernel_emu"] {
            let two_q = metric(&m, &format!("two_q/{backend}/hit_ratio"));
            let two_list = metric(&m, &format!("two_list/{backend}/hit_ratio"));
            assert!(
                two_q > two_list + 0.02,
                "{backend}: expected 2Q ({two_q}) to clearly beat 2-list ({two_list})"
            );
        }
    }

    #[test]
    fn tables_produce_reference_values() {
        let m = table1().unwrap();
        assert_eq!(m.len(), 5);
        let m = table3().unwrap();
        assert!(m
            .entries()
            .iter()
            .any(|(k, v)| k == "measured/memory_read_mbps" && *v == 6860.0));
    }

    fn metric(m: &Metrics, name: &str) -> f64 {
        m.entries()
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("metric {name} missing"))
    }

    #[test]
    fn strided_rereads_diverge_between_model_and_emulator() {
        let m = prog_strided_reads().unwrap();
        // On sparse strided re-reads the emulator's resident ranges hit
        // while the amount-based model keeps reading disk: the emulator hit
        // ratio must be *strictly* higher (the acceptance criterion of the
        // readahead/throttling PR).
        for stride in [2, 4] {
            let emu = metric(&m, &format!("stride_{stride}/kernel_emu/hit_ratio"));
            let model = metric(&m, &format!("stride_{stride}/cache/hit_ratio"));
            assert!(
                emu > model + 0.05,
                "stride {stride}: emulator {emu} vs model {model}"
            );
            // Sparse strides collapse the window after the fresh-stream
            // request at offset 0: at most the one-shot initial window
            // (32 MB) is ever speculated.
            assert!(
                metric(&m, &format!("stride_{stride}/kernel_emu/bytes_prefetched"))
                    <= 32.0 * MB + 1.0
            );
        }
        // The contiguous stride is sequential: readahead fires throughout.
        assert!(metric(&m, "stride_1/kernel_emu/bytes_prefetched") > 500.0 * MB);
        // The macroscopic model has no readahead notion at any stride.
        assert_eq!(metric(&m, "stride_1/cache/bytes_prefetched"), 0.0);
    }

    #[test]
    fn pacing_sweep_shows_stalls_and_less_synchronous_writeback() {
        let m = sweep_throttle_pacing().unwrap();
        // Every configuration stalls the writer: unpaced only in the hard
        // leg (synchronous writeback at the dirty threshold), paced also in
        // the band.
        for label in ["pacing_000", "pacing_050", "pacing_100", "pacing_200"] {
            assert!(metric(&m, &format!("{label}/throttle_stall_s")) > 0.0);
        }
        // The CAWL effect: stalled writers hand the work to the background
        // threads, so the synchronously flushed volume falls monotonically
        // with the pacing strength (and the background volume rises).
        let sync: Vec<f64> = ["pacing_000", "pacing_050", "pacing_100", "pacing_200"]
            .iter()
            .map(|l| metric(&m, &format!("{l}/synchronous_flushed")))
            .collect();
        assert!(
            sync.windows(2).all(|w| w[1] < w[0]),
            "synchronous flushing not monotonically decreasing: {sync:?}"
        );
        assert!(
            metric(&m, "pacing_200/background_flushed")
                > metric(&m, "pacing_000/background_flushed")
        );
    }

    #[test]
    fn crash_scenarios_respect_fsync_durability() {
        // Before the fsync the write-back caches lose the whole 200 MB
        // record; after it everything survives on every back-end.
        let before = fault_crash_before_fsync_database().unwrap();
        for label in ["cache", "kernel_emu"] {
            assert!(metric(&before, &format!("{label}/lost_bytes")) > 199.0 * MB);
            assert_eq!(metric(&before, &format!("{label}/lost_files")), 1.0);
        }
        assert_eq!(metric(&before, "cacheless/lost_bytes"), 0.0);
        let after = fault_crash_after_fsync_database().unwrap();
        for label in ["cacheless", "cache", "kernel_emu"] {
            assert_eq!(metric(&after, &format!("{label}/lost_bytes")), 0.0);
            assert!(metric(&after, &format!("{label}/durable_bytes")) > 199.0 * MB);
        }
    }

    #[test]
    fn nfs_outage_scenario_actually_retries() {
        let m = fault_nfs_outage_retry_storm().unwrap();
        for label in ["cacheless", "cache"] {
            assert!(
                metric(&m, &format!("{label}/retries")) >= 1.0,
                "{label}: the outage window should force at least one retry"
            );
        }
    }

    #[test]
    fn quickstart_scenario_shows_the_cache_hit() {
        let m = example_quickstart().unwrap();
        let get = |name: &str| {
            m.entries()
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| *v)
                .unwrap()
        };
        // The cached second read is a full cache hit and much faster.
        assert_eq!(get("cache/second_read_hit_ratio"), 1.0);
        assert!(get("cache/second_read_s") < 0.5 * get("cacheless/second_read_s"));
    }
}
