//! # `harness` — parallel scenario sweeps with golden-baseline gating
//!
//! The paper's contribution is *predictive accuracy*: simulated makespans
//! must track the page-cache behaviour of a real system. This crate is the
//! subsystem that keeps the reproduction honest about it:
//!
//! * [`scenario`] — the [`Scenario`] trait: a named,
//!   deterministic simulation run producing ordered `(metric, value)` pairs;
//! * [`registry`](mod@registry) — every paper figure/table, the `examples/` workloads, and
//!   synthetic sweeps (dirty ratios, cache size, read/write mix,
//!   concurrency) wrapped as scenarios;
//! * [`runner`] — fans scenarios out across `std::thread` workers (one
//!   single-threaded DES engine per scenario) with order-independent result
//!   collection, so `RESULTS.json` is bit-identical for any thread count and
//!   dispatch seed;
//! * [`shard`] — the sharded parallel executor (`--shards N`): a static
//!   round-robin partition of independent simulation instances (whole
//!   scenarios *and* intra-scenario sweep points) over OS threads with an
//!   index-keyed merge, byte-identical to sequential execution;
//! * [`json`] — dependency-free, deterministic JSON;
//! * [`gate`] — diffs results against `baselines/golden.json` with
//!   per-metric relative tolerances and reports every drift.
//!
//! The `sweep` binary ties it together; `scripts/sweep.sh --check` is the CI
//! entry point and exits non-zero on any drift.
//!
//! ## Baseline updates
//!
//! See [`gate`] for the golden-update workflow: PRs that legitimately move
//! predictions regenerate `baselines/golden.json` in the same commit
//! (`scripts/sweep.sh --update-golden`) and state why.

#![warn(missing_docs)]

pub mod gate;
pub mod json;
pub mod registry;
pub mod runner;
pub mod scenario;
pub mod shard;

pub use gate::{compare, compare_intersection_exact, make_golden, Drift, Tolerances};
pub use json::{parse, Json};
pub use registry::registry;
pub use runner::{run_sweep, ScenarioResult, SweepConfig, SweepResults};
pub use scenario::{FnScenario, Metrics, Scenario};
pub use shard::{run_points, run_sharded};
