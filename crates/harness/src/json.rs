//! A minimal, dependency-free JSON value with a **deterministic** serializer
//! and a strict parser.
//!
//! The workspace builds offline (no serde), and the sweep harness needs
//! byte-identical output for identical inputs — regardless of thread count or
//! platform — so `RESULTS.json` can be diffed against a checked-in golden
//! file. Two properties guarantee that:
//!
//! * objects preserve **insertion order** (the harness always inserts in
//!   registry/metric order, never from a hash map);
//! * numbers are rendered with Rust's shortest-round-trip `f64` formatting,
//!   which is fully specified and identical on every platform.

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number. Non-finite values serialize as `null` (JSON has no inf/NaN).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as an ordered list of key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs (order preserved).
    pub fn obj(pairs: Vec<(String, Json)>) -> Json {
        Json::Obj(pairs)
    }

    /// Looks a key up in an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object's pairs, or an empty slice for other variants.
    pub fn pairs(&self) -> &[(String, Json)] {
        match self {
            Json::Obj(pairs) => pairs,
            _ => &[],
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline, the
    /// format of `RESULTS.json` and `baselines/golden.json`.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out.push('\n');
        out
    }

    /// Serializes without any whitespace.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_number(out, *v),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => write_seq(out, indent, '[', ']', items.len(), |out, i, ind| {
                items[i].write(out, ind);
            }),
            Json::Obj(pairs) => write_seq(out, indent, '{', '}', pairs.len(), |out, i, ind| {
                write_string(out, &pairs[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                pairs[i].1.write(out, ind);
            }),
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, Option<usize>),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    let inner = indent.map(|i| i + 1);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(depth) = inner {
            out.push('\n');
            out.push_str(&"  ".repeat(depth));
        }
        item(out, i, inner);
    }
    if let Some(depth) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(depth));
    }
    out.push(close);
}

fn write_number(out: &mut String, v: f64) {
    if !v.is_finite() {
        // JSON cannot represent inf/NaN; the gate treats null as "absent".
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        // Integral values print without a fraction, like serde_json.
        let _ = write!(out, "{}", v as i64);
    } else {
        // Shortest round-trip representation: deterministic and lossless.
        let _ = write!(out, "{v}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document. Returns a descriptive error on malformed input.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {} (found {:?})",
            c as char,
            *pos,
            bytes.get(*pos).map(|b| *b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    other => return Err(format!("expected ',' or '}}', found {other:?}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    other => return Err(format!("expected ',' or ']', found {other:?}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|e| format!("invalid number {text:?} at byte {start}: {e}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    let mut chunk_start = *pos;
    while *pos < bytes.len() {
        match bytes[*pos] {
            b'"' => {
                out.push_str(
                    std::str::from_utf8(&bytes[chunk_start..*pos])
                        .map_err(|e| format!("invalid UTF-8 in string: {e}"))?,
                );
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                out.push_str(
                    std::str::from_utf8(&bytes[chunk_start..*pos])
                        .map_err(|e| format!("invalid UTF-8 in string: {e}"))?,
                );
                *pos += 1;
                let esc = bytes
                    .get(*pos)
                    .ok_or_else(|| "unterminated escape".to_string())?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| format!("invalid \\u escape: {e}"))?;
                        *pos += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("invalid escape \\{}", *other as char)),
                }
                chunk_start = *pos;
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let doc = Json::obj(vec![
            ("version".to_string(), Json::Num(1.0)),
            (
                "scenarios".to_string(),
                Json::obj(vec![(
                    "fig4a".to_string(),
                    Json::obj(vec![
                        ("pi".to_string(), Json::Num(std::f64::consts::PI)),
                        ("count".to_string(), Json::Num(42.0)),
                        ("label".to_string(), Json::Str("a \"b\"\nc".to_string())),
                        (
                            "flags".to_string(),
                            Json::Arr(vec![Json::Bool(true), Json::Null]),
                        ),
                    ]),
                )]),
            ),
        ]);
        for text in [doc.render_pretty(), doc.render_compact()] {
            assert_eq!(parse(&text).unwrap(), doc, "failed on {text}");
        }
    }

    #[test]
    fn rendering_is_deterministic_and_ordered() {
        let a = Json::obj(vec![
            ("z".to_string(), Json::Num(1.0)),
            ("a".to_string(), Json::Num(0.1)),
        ]);
        let text = a.render_pretty();
        // Insertion order, not alphabetical.
        assert!(text.find("\"z\"").unwrap() < text.find("\"a\"").unwrap());
        assert_eq!(text, a.clone().render_pretty());
        assert!(text.contains("0.1"));
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn integral_floats_print_without_fraction() {
        assert_eq!(Json::Num(3.0).render_compact(), "3");
        assert_eq!(Json::Num(-0.5).render_compact(), "-0.5");
        assert_eq!(Json::Num(f64::INFINITY).render_compact(), "null");
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn get_and_as_f64() {
        let doc = parse("{\"a\": {\"b\": 2.5}}").unwrap();
        assert_eq!(
            doc.get("a").and_then(|a| a.get("b")).and_then(Json::as_f64),
            Some(2.5)
        );
        assert!(doc.get("missing").is_none());
        assert!(Json::Null.get("a").is_none());
    }
}
